(** Benchmark harness shared by every experiment: store construction,
    warm-cache timing (the paper's protocol: discard the first run,
    average the rest), outcome classification against an oracle count,
    and fixed-width table printing. *)

type config = {
  scale : int;  (** approximate triples per dataset *)
  runs : int;  (** timed runs after the warm-up run *)
  timeout : float;  (** per-query timeout in seconds (paper: 10 min) *)
  experiments : string list;  (** empty = all *)
  json_dir : string option;  (** write BENCH_*.json result files here *)
  domains : int;  (** largest executor-domain count in the parallel
                      scaling experiment (the curve doubles up to it) *)
}

let default_config =
  { scale = 30_000; runs = 3; timeout = 10.0; experiments = [];
    json_dir = None; domains = 4 }

let parse_args () =
  let cfg = ref default_config in
  let specs =
    [ ("--scale", Arg.Int (fun s -> cfg := { !cfg with scale = s }),
       "N  approximate dataset size in triples (default 30000)");
      ("--runs", Arg.Int (fun r -> cfg := { !cfg with runs = r }),
       "N  timed runs per query after warm-up (default 3)");
      ("--timeout", Arg.Float (fun t -> cfg := { !cfg with timeout = t }),
       "S  per-query timeout in seconds (default 10)");
      ("-e", Arg.String (fun e -> cfg := { !cfg with experiments = e :: !cfg.experiments }),
       "NAME  run only this experiment (repeatable)");
      ("--json-dir", Arg.String (fun d -> cfg := { !cfg with json_dir = Some d }),
       "DIR  also write machine-readable BENCH_*.json result files into DIR");
      ("--domains", Arg.Int (fun n -> cfg := { !cfg with domains = n }),
       "N  largest executor-domain count in the parallel scaling curve \
        (default 4)") ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--scale N] [--runs N] [--timeout S] [--json-dir DIR] [--domains N] \
     [-e experiment]...";
  !cfg

let enabled cfg name = cfg.experiments = [] || List.mem name cfg.experiments

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n%!" title

(* ------------------------------------------------------------------ *)
(* Store construction                                                  *)
(* ------------------------------------------------------------------ *)

type system = { sys_name : string; store : Db2rdf.Store.t; load_seconds : float }

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let build_db2rdf ?(name = "DB2RDF") ?(options = Db2rdf.Engine.default_options)
    triples =
  let (engine_store, _, _), load_seconds =
    timed (fun () ->
        Db2rdf.Engine.create_colored ~options
          ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24) triples)
  in
  { sys_name = name; store = Db2rdf.Engine.to_store ~name engine_store; load_seconds }

let build_db2rdf_naive triples =
  build_db2rdf ~name:"DB2RDF-naive"
    ~options:
      { Db2rdf.Engine.default_options with
        optimize = false; merge = false; late_fuse = false }
    triples

let build_triple_store triples =
  let ts, load_seconds =
    timed (fun () ->
        let ts = Db2rdf.Triple_store.create () in
        Db2rdf.Triple_store.load ts triples;
        ts)
  in
  { sys_name = "TripleStore"; store = Db2rdf.Triple_store.to_store ts; load_seconds }

let build_vertical_store triples =
  let vs, load_seconds =
    timed (fun () ->
        let vs = Db2rdf.Vertical_store.create () in
        Db2rdf.Vertical_store.load vs triples;
        vs)
  in
  { sys_name = "VertStore"; store = Db2rdf.Vertical_store.to_store vs; load_seconds }

let build_native triples =
  let ns, load_seconds =
    timed (fun () ->
        let ns = Db2rdf.Native_store.create () in
        Db2rdf.Native_store.load ns triples;
        ns)
  in
  { sys_name = "NativeRef"; store = Db2rdf.Native_store.to_store ns; load_seconds }

(* ------------------------------------------------------------------ *)
(* Query measurement                                                   *)
(* ------------------------------------------------------------------ *)

type measurement = {
  m_query : string;
  m_system : string;
  m_outcome : [ `Complete of int | `Timeout | `Error of string | `Unsupported ];
  m_seconds : float;  (** mean wall-clock over timed runs; timeout value
                          when timed out *)
}

(** Measure one query on one system: one warm-up run, then [runs] timed
    runs, mean reported (the paper's warm-cache protocol). [expected]
    is the oracle row count; a differing count classifies as error. *)
let measure cfg ?expected (sys : system) qname (q : Sparql.Ast.query) : measurement =
  let run1 () = Db2rdf.Store.run ~timeout:cfg.timeout sys.store q in
  match run1 () with
  | Db2rdf.Store.Timed_out, _ ->
    { m_query = qname; m_system = sys.sys_name; m_outcome = `Timeout;
      m_seconds = cfg.timeout }
  | Db2rdf.Store.Unsupported _, _ ->
    { m_query = qname; m_system = sys.sys_name; m_outcome = `Unsupported;
      m_seconds = 0.0 }
  | Db2rdf.Store.Failed msg, _ ->
    { m_query = qname; m_system = sys.sys_name; m_outcome = `Error msg;
      m_seconds = 0.0 }
  | Db2rdf.Store.Complete first, _ ->
    let count = List.length first.Sparql.Ref_eval.rows in
    (match expected with
     | Some n when n <> count ->
       { m_query = qname; m_system = sys.sys_name;
         m_outcome = `Error (Printf.sprintf "expected %d rows, got %d" n count);
         m_seconds = 0.0 }
     | _ ->
       let total = ref 0.0 in
       let timed_out = ref false in
       for _ = 1 to cfg.runs do
         match run1 () with
         | Db2rdf.Store.Complete _, dt -> total := !total +. dt
         | _ -> timed_out := true
       done;
       if !timed_out then
         { m_query = qname; m_system = sys.sys_name; m_outcome = `Timeout;
           m_seconds = cfg.timeout }
       else
         { m_query = qname; m_system = sys.sys_name;
           m_outcome = `Complete count;
           m_seconds = !total /. float_of_int cfg.runs })

(** Measure one query and additionally collect one per-operator metrics
    tree via the store's EXPLAIN ANALYZE path (a single extra execution;
    [None] when the store has no relational executor or the analyzed run
    fails). *)
let measure_analyzed cfg ?expected (sys : system) qname q :
  measurement * Relsql.Opstats.t option =
  let m = measure cfg ?expected sys qname q in
  let stats =
    match m.m_outcome with
    | `Complete _ ->
      (try snd (sys.store.Db2rdf.Store.analyze ~timeout:cfg.timeout q)
       with _ -> None)
    | _ -> None
  in
  (m, stats)

let outcome_cell (m : measurement) =
  match m.m_outcome with
  | `Complete _ -> Printf.sprintf "%8.1f" (m.m_seconds *. 1000.0)
  | `Timeout -> " timeout"
  | `Error _ -> "   error"
  | `Unsupported -> "  unsup."

(* ------------------------------------------------------------------ *)
(* Table printing                                                      *)
(* ------------------------------------------------------------------ *)

let print_row widths cells =
  List.iter2 (fun w c -> Printf.printf "%-*s" (w + 2) c) widths cells;
  print_newline ()

let print_table header rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  print_row widths header;
  print_row widths (List.map (fun w -> String.make w '-') widths);
  List.iter (print_row widths) rows;
  flush stdout

(* ------------------------------------------------------------------ *)
(* JSON result files                                                   *)
(* ------------------------------------------------------------------ *)

(** Just enough JSON to serialize benchmark results — no external
    dependency. *)
type json =
  | J_int of int
  | J_float of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec json_write buf indent j =
  let pad n = String.make n ' ' in
  match j with
  | J_int i -> Buffer.add_string buf (string_of_int i)
  | J_float x ->
    (* JSON has no NaN/Infinity; clamp to null-ish zero. *)
    if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.6g" x)
    else Buffer.add_string buf "0"
  | J_str s -> Buffer.add_string buf ("\"" ^ json_escape s ^ "\"")
  | J_list [] -> Buffer.add_string buf "[]"
  | J_list items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        json_write buf (indent + 2) item)
      items;
    Buffer.add_string buf ("\n" ^ pad indent ^ "]")
  | J_obj [] -> Buffer.add_string buf "{}"
  | J_obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2) ^ "\"" ^ json_escape k ^ "\": ");
        json_write buf (indent + 2) v)
      fields;
    Buffer.add_string buf ("\n" ^ pad indent ^ "}")

let json_to_string j =
  let buf = Buffer.create 4096 in
  json_write buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(** Write a result file into [cfg.json_dir] (no-op when unset). *)
let write_json cfg ~file j =
  match cfg.json_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir file in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (json_to_string j));
    Printf.printf "wrote %s\n%!" path

(** Serialize a per-operator metrics tree. *)
let rec opstats_json (s : Relsql.Opstats.t) : json =
  J_obj
    ([ ("op", J_str s.Relsql.Opstats.label);
       ("rows_in", J_int s.Relsql.Opstats.rows_in);
       ("rows_out", J_int s.Relsql.Opstats.rows_out) ]
     @ (if s.Relsql.Opstats.index_probes > 0 then
          [ ("index_probes", J_int s.Relsql.Opstats.index_probes) ]
        else [])
     @ (if s.Relsql.Opstats.build_rows > 0 then
          [ ("build_rows", J_int s.Relsql.Opstats.build_rows) ]
        else [])
     @ (if s.Relsql.Opstats.workers > 1 then
          [ ("workers", J_int s.Relsql.Opstats.workers);
            ("par_ms", J_float s.Relsql.Opstats.par_ms) ]
        else [])
     @ (if s.Relsql.Opstats.partitions > 0 then
          [ ("partitions", J_int s.Relsql.Opstats.partitions);
            ("build_workers", J_int s.Relsql.Opstats.build_workers);
            ("build_ms", J_float s.Relsql.Opstats.build_ms) ]
        else [])
     @ (if s.Relsql.Opstats.cache_hits + s.Relsql.Opstats.cache_misses > 0 then
          [ ("scan_cache_hits", J_int s.Relsql.Opstats.cache_hits);
            ("scan_cache_misses", J_int s.Relsql.Opstats.cache_misses) ]
        else [])
     @ [ ("ms", J_float (1000.0 *. s.Relsql.Opstats.seconds));
         ("self_ms", J_float (1000.0 *. Relsql.Opstats.self_seconds s)) ]
     @
     match s.Relsql.Opstats.children with
     | [] -> []
     | cs -> [ ("children", J_list (List.map opstats_json cs)) ])

let measurement_json (m : measurement) : json =
  let outcome, extra =
    match m.m_outcome with
    | `Complete n -> ("complete", [ ("results", J_int n) ])
    | `Timeout -> ("timeout", [])
    | `Error msg -> ("error", [ ("message", J_str msg) ])
    | `Unsupported -> ("unsupported", [])
  in
  J_obj
    ([ ("system", J_str m.m_system); ("outcome", J_str outcome) ]
     @ extra
     @ [ ("ms", J_float (1000.0 *. m.m_seconds)) ])
