(** Tests for SPARQL aggregates (GROUP BY / COUNT / SUM / AVG / MIN /
    MAX): parsing, reference semantics, and cross-store agreement. *)

open Sparql

let graph () =
  let g = Rdf.Graph.create () in
  let add s p o = Rdf.Graph.add g (Rdf.Triple.spo s p o) in
  add "acme" "employs" (Rdf.Term.iri "ann");
  add "acme" "employs" (Rdf.Term.iri "bob");
  add "acme" "employs" (Rdf.Term.iri "cat");
  add "bcorp" "employs" (Rdf.Term.iri "dan");
  add "ann" "salary" (Rdf.Term.int_lit 100);
  add "bob" "salary" (Rdf.Term.int_lit 200);
  add "cat" "salary" (Rdf.Term.int_lit 200);
  add "dan" "salary" (Rdf.Term.int_lit 50);
  add "ann" "age" (Rdf.Term.int_lit 30);
  g

let triples_of g =
  let acc = ref [] in
  Rdf.Graph.iter_triples (fun t -> acc := t :: !acc) g;
  !acc

let eval g src = Ref_eval.eval g (Parser.parse src)

let test_parse_aggregates () =
  let q =
    Parser.parse
      "SELECT ?c (COUNT(?e) AS ?n) (SUM(?s) AS ?total) WHERE { ?c <employs> ?e . ?e <salary> ?s } GROUP BY ?c"
  in
  Alcotest.(check bool) "is aggregate" true (Ast.is_aggregate q);
  Alcotest.(check int) "2 aggregates" 2 (List.length q.Ast.aggregates);
  Alcotest.(check (list string)) "group by" [ "c" ] q.Ast.group_by;
  Alcotest.(check (list string)) "projection" [ "c"; "n"; "total" ]
    (Ast.projected_vars q)

let test_parse_rejections () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail ("should reject: " ^ src))
    [ (* ungrouped plain variable *)
      "SELECT ?e (COUNT(?s) AS ?n) WHERE { ?e <salary> ?s }";
      (* ORDER BY with aggregates *)
      "SELECT (COUNT(?s) AS ?n) WHERE { ?e <salary> ?s } ORDER BY ?n";
      (* HAVING unsupported *)
      "SELECT ?e WHERE { ?e <salary> ?s } GROUP BY ?e HAVING (?s > 1)" ]

let test_oracle_count () =
  let g = graph () in
  let r = eval g "SELECT (COUNT(*) AS ?n) WHERE { ?c <employs> ?e }" in
  Alcotest.(check int) "one row" 1 (List.length r.Ref_eval.rows);
  (match r.Ref_eval.rows with
   | [ [ Some t ] ] ->
     Alcotest.(check string) "count 4" (Rdf.Term.to_string (Rdf.Term.int_lit 4))
       (Rdf.Term.to_string t)
   | _ -> Alcotest.fail "bad shape")

let test_oracle_group () =
  let g = graph () in
  let r =
    eval g
      "SELECT ?c (COUNT(?e) AS ?n) (SUM(?s) AS ?total) WHERE { ?c <employs> ?e . ?e <salary> ?s } GROUP BY ?c"
  in
  Alcotest.(check int) "two groups" 2 (List.length r.Ref_eval.rows);
  let canon = Ref_eval.canonical r in
  Alcotest.(check bool) "acme group" true
    (List.exists (fun row -> Helpers.contains row "acme" && Helpers.contains row "500") canon);
  Alcotest.(check bool) "bcorp group" true
    (List.exists (fun row -> Helpers.contains row "bcorp" && Helpers.contains row "50") canon)

let test_oracle_distinct_min_max_avg () =
  let g = graph () in
  let r =
    eval g
      "SELECT (SUM(DISTINCT ?s) AS ?d) (MIN(?s) AS ?lo) (MAX(?s) AS ?hi) (AVG(?s) AS ?mean) WHERE { ?e <salary> ?s }"
  in
  match r.Ref_eval.rows with
  | [ [ Some d; Some lo; Some hi; Some mean ] ] ->
    (* salaries 100,200,200,50: distinct sum 350, min 50, max 200,
       avg 137.5 *)
    Alcotest.(check string) "distinct sum" "350" (match d with Rdf.Term.Lit l -> l.Rdf.Term.lex | _ -> "");
    Alcotest.(check string) "min" "50" (match lo with Rdf.Term.Lit l -> l.Rdf.Term.lex | _ -> "");
    Alcotest.(check string) "max" "200" (match hi with Rdf.Term.Lit l -> l.Rdf.Term.lex | _ -> "");
    Alcotest.(check string) "avg" "137.5" (match mean with Rdf.Term.Lit l -> l.Rdf.Term.lex | _ -> "")
  | _ -> Alcotest.fail "bad shape"

let test_empty_aggregate () =
  let g = graph () in
  let r = eval g "SELECT (COUNT(?x) AS ?n) (AVG(?x) AS ?a) WHERE { ?x <nothere> ?y }" in
  match r.Ref_eval.rows with
  | [ [ Some n; None ] ] ->
    Alcotest.(check string) "count 0" "0"
      (match n with Rdf.Term.Lit l -> l.Rdf.Term.lex | _ -> "")
  | _ -> Alcotest.fail "expected one row with count 0 and unbound avg"

let agg_queries =
  [ "SELECT (COUNT(*) AS ?n) WHERE { ?c <employs> ?e }";
    "SELECT ?c (COUNT(?e) AS ?n) WHERE { ?c <employs> ?e } GROUP BY ?c";
    "SELECT ?c (COUNT(?e) AS ?n) (SUM(?s) AS ?total) WHERE { ?c <employs> ?e . ?e <salary> ?s } GROUP BY ?c";
    "SELECT (SUM(DISTINCT ?s) AS ?d) (MIN(?s) AS ?lo) (MAX(?s) AS ?hi) (AVG(?s) AS ?m) WHERE { ?e <salary> ?s }";
    "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?e <salary> ?s }";
    "SELECT ?c (COUNT(?a) AS ?n) WHERE { ?c <employs> ?e OPTIONAL { ?e <age> ?a } } GROUP BY ?c";
    "SELECT (COUNT(?x) AS ?n) WHERE { ?x <nothere> ?y }" ]

let test_aggregates_across_stores () =
  let g = graph () in
  let triples = triples_of g in
  let stores = Helpers.all_stores triples in
  List.iter
    (fun src ->
      let q = Parser.parse src in
      let oracle = Ref_eval.eval g q in
      List.iter
        (fun (store : Db2rdf.Store.t) ->
          let got = store.Db2rdf.Store.query q in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s" store.Db2rdf.Store.name src)
            true
            (Ref_eval.equal_results oracle got))
        stores)
    agg_queries

let test_aggregates_on_workload () =
  (* Publication counts per author on SP2B data — a realistic analytic
     query over a larger dataset. *)
  let triples = Workloads.Sp2b.generate ~scale:3000 in
  let g = Helpers.oracle_of triples in
  let src =
    "SELECT ?a (COUNT(?p) AS ?pubs) WHERE { ?p <http://sp2b.org/dblp#creator> ?a } GROUP BY ?a"
  in
  let q = Parser.parse src in
  let oracle = Ref_eval.eval g q in
  Alcotest.(check bool) "non-trivial group count" true
    (List.length oracle.Ref_eval.rows > 10);
  List.iter
    (fun (store : Db2rdf.Store.t) ->
      Alcotest.(check bool)
        (store.Db2rdf.Store.name ^ " agrees")
        true
        (Ref_eval.equal_results oracle (store.Db2rdf.Store.query q)))
    (Helpers.all_stores triples)

let suite =
  [ Alcotest.test_case "parse aggregates" `Quick test_parse_aggregates;
    Alcotest.test_case "parser rejections" `Quick test_parse_rejections;
    Alcotest.test_case "oracle: count-star" `Quick test_oracle_count;
    Alcotest.test_case "oracle: group by" `Quick test_oracle_group;
    Alcotest.test_case "oracle: distinct/min/max/avg" `Quick test_oracle_distinct_min_max_avg;
    Alcotest.test_case "oracle: empty aggregate" `Quick test_empty_aggregate;
    Alcotest.test_case "aggregates across stores" `Quick test_aggregates_across_stores;
    Alcotest.test_case "aggregates on SP2B workload" `Quick test_aggregates_on_workload ]
