(** Seeded random RDF graph generation for the differential fuzzer.

    Graphs are built from a small closed vocabulary so that random
    queries join and match with useful probability, and they
    deliberately include the storage corners the DB2RDF layout has to
    get right: more predicates than hash columns (hash conflicts and
    spill rows in DPH/RPH), multi-valued predicates (lid indirection
    into the DS/RS secondary relations), literals with language tags,
    numeric literals of several datatypes, and non-ASCII lexical
    forms. *)

type vocab = {
  subjects : string list;  (** IRI local names, also used as objects *)
  preds : string list;  (** predicate IRI local names *)
  literals : Rdf.Term.t list;  (** object literal pool *)
}

let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let range st lo hi = lo + Random.State.int st (hi - lo + 1)

(* The literal pool mixes plain, language-tagged, typed-numeric,
   plain-numeric and non-ASCII lexical forms; several entries share a
   lexical form across tags/datatypes so comparisons must distinguish
   them. *)
let literal_pool =
  [ Rdf.Term.lit "a";
    Rdf.Term.lit "b";
    Rdf.Term.lit "lit c";
    Rdf.Term.lang_lit "a" "en";
    Rdf.Term.lang_lit "a" "fr";
    Rdf.Term.lang_lit "b" "en";
    Rdf.Term.int_lit 0;
    Rdf.Term.int_lit 1;
    Rdf.Term.int_lit 2;
    Rdf.Term.int_lit 7;
    Rdf.Term.int_lit 13;
    Rdf.Term.typed_lit "2.5" Rdf.Term.xsd_decimal;
    Rdf.Term.typed_lit "-1.5" Rdf.Term.xsd_decimal;
    Rdf.Term.lit "7";  (* plain literal with a numeric lexical form *)
    Rdf.Term.lit "caf\xc3\xa9";  (* non-ASCII (é), exercises \u escapes *)
    Rdf.Term.lang_lit "caf\xc3\xa9" "fr" ]

(** Generate a graph of [~size] triples (default random in 15..120)
    plus the vocabulary it was drawn from. Deterministic in [st]. *)
let generate ?size (st : Random.State.t) : Rdf.Triple.t list * vocab =
  let n_subj = range st 6 14 in
  let n_pred = range st 6 12 in
  let subjects = List.init n_subj (Printf.sprintf "s%d") in
  let preds = List.init n_pred (Printf.sprintf "p%d") in
  let vocab = { subjects; preds; literals = literal_pool } in
  let size = match size with Some n -> n | None -> range st 15 120 in
  let gen_object () =
    if Random.State.bool st then Rdf.Term.iri (pick st subjects)
    else pick st literal_pool
  in
  let acc = ref [] in
  let count = ref 0 in
  while !count < size do
    let s = pick st subjects and p = pick st preds in
    let burst =
      (* Multi-valued predicates: bursts of distinct objects under one
         (subject, predicate) force lid indirection and secondary-table
         rows in the DPH/RPH layout. *)
      if Random.State.int st 4 = 0 then range st 2 6 else 1
    in
    for _ = 1 to burst do
      acc := Rdf.Triple.spo s p (gen_object ()) :: !acc;
      incr count
    done
  done;
  (!acc, vocab)
