lib/core/exec_tree.ml: Array Cost Dataflow List Option Printf Sparql String
