(** Tests for the property-path subset: alternatives, sequences and
    inverses rewrite into SPARQL 1.0 patterns at parse time; transitive
    closures are rejected. *)

open Sparql

let mini_graph () =
  let g = Rdf.Graph.create () in
  let add s p o = Rdf.Graph.add g (Rdf.Triple.spo s p o) in
  add "a" "knows" (Rdf.Term.iri "b");
  add "b" "knows" (Rdf.Term.iri "c");
  add "b" "likes" (Rdf.Term.iri "d");
  add "c" "knows" (Rdf.Term.iri "d");
  g

let count g src =
  List.length (Ref_eval.eval g (Parser.parse src)).Ref_eval.rows

let test_sequence () =
  let g = mini_graph () in
  (* a knows/knows c; b knows/knows d *)
  Alcotest.(check int) "2-hop" 2 (count g "SELECT ?x ?y WHERE { ?x <knows>/<knows> ?y }");
  Alcotest.(check int) "3-hop" 1
    (count g "SELECT ?x ?y WHERE { ?x <knows>/<knows>/<knows> ?y }")

let test_alternative () =
  let g = mini_graph () in
  Alcotest.(check int) "knows|likes from b" 2
    (count g "SELECT ?y WHERE { <b> <knows>|<likes> ?y }")

let test_inverse () =
  let g = mini_graph () in
  Alcotest.(check int) "who is known (inverse)" 1
    (count g "SELECT ?x WHERE { <c> ^<knows> ?x }");
  (* inverse of a sequence reverses the whole chain *)
  Alcotest.(check int) "inverse sequence" 2
    (count g "SELECT ?x WHERE { ?x ^(<knows>/<knows>) ?y }")

let test_combined () =
  let g = mini_graph () in
  Alcotest.(check int) "seq of alt" 3
    (count g "SELECT ?x ?y WHERE { ?x <knows>/(<knows>|<likes>) ?y }")

let test_synthetic_vars_hidden () =
  let q = Parser.parse "SELECT * WHERE { ?x <knows>/<knows> ?y }" in
  let vars = Ast.projected_vars q in
  Alcotest.(check (list string)) "only user variables" [ "x"; "y" ]
    (List.sort compare vars)

let test_closure_rejected () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail ("should reject: " ^ src))
    [ "SELECT ?x WHERE { ?x <knows>+ ?y }";
      "SELECT ?x WHERE { ?x <knows>* ?y }";
      "SELECT ?x WHERE { ?x (<knows>/<likes>)+ ?y }" ]

let test_paths_on_stores () =
  let triples =
    [ Rdf.Triple.spo "a" "knows" (Rdf.Term.iri "b");
      Rdf.Triple.spo "b" "knows" (Rdf.Term.iri "c");
      Rdf.Triple.spo "b" "likes" (Rdf.Term.iri "d") ]
  in
  let g = Helpers.oracle_of triples in
  let stores = Helpers.all_stores triples in
  List.iter
    (fun store ->
      Helpers.check_store_vs_oracle g store
        "SELECT ?x ?y WHERE { ?x <knows>/(<knows>|<likes>) ?y }";
      Helpers.check_store_vs_oracle g store
        "SELECT ?x WHERE { <c> ^<knows>/^<knows> ?x }")
    stores

let suite =
  [ Alcotest.test_case "sequence paths" `Quick test_sequence;
    Alcotest.test_case "alternative paths" `Quick test_alternative;
    Alcotest.test_case "inverse paths" `Quick test_inverse;
    Alcotest.test_case "combined paths" `Quick test_combined;
    Alcotest.test_case "synthetic vars hidden" `Quick test_synthetic_vars_hidden;
    Alcotest.test_case "closures rejected" `Quick test_closure_rejected;
    Alcotest.test_case "paths across stores" `Quick test_paths_on_stores ]
