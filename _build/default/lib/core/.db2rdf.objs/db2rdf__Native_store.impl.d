lib/core/native_store.ml: List Rdf Relsql Sparql Store
