(** SPARQL printer. [Parser.parse (Pp.to_string q)] round-trips modulo
    group flattening (property-tested with a semantic comparison). *)

val term_pat_to_string : Ast.term_pat -> string
val expr_to_string : Ast.expr -> string
val triple_pat_to_string : Ast.triple_pat -> string
val agg_fun_to_string : Ast.agg_fun -> string
val to_string : Ast.query -> string
val update_to_string : Ast.update -> string
val statement_to_string : Ast.statement -> string

(** A whole script, statements separated by [;] lines — the inverse of
    {!Parser.parse_script}. *)
val script_to_string : Ast.statement list -> string
