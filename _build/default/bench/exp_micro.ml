(** E1 — the Section 2.1 schema micro-benchmark: Tables 1/2 and
    Figure 3. Ten star queries over the predicate-set mix, evaluated on
    the entity-oriented (DB2RDF), triple-store and predicate-oriented
    layouts. The paper's shape: DB2RDF stable and fastest on mixed and
    unselective stars (Q1–Q6); the predicate-oriented store wins only
    when every star member is individually selective (Q7–Q10 tail);
    the triple store pays a self-join per conjunct. *)

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf "E1. Schema micro-benchmark (Tables 1-2, Figure 3) — %d triples"
       cfg.Harness.scale);
  let triples = Workloads.Micro.generate ~scale:cfg.Harness.scale in
  Printf.printf "generated %d triples\n%!" (List.length triples);
  let systems =
    [ Harness.build_db2rdf ~name:"Entity-oriented" triples;
      Harness.build_triple_store triples;
      Harness.build_vertical_store triples ]
  in
  List.iter
    (fun (s : Harness.system) ->
      Printf.printf "loaded %-16s in %6.2fs\n%!" s.Harness.sys_name
        s.Harness.load_seconds)
    systems;
  let rows =
    List.map
      (fun (qname, src) ->
        let q = Sparql.Parser.parse src in
        let ms =
          List.map (fun sys -> Harness.measure cfg sys qname q) systems
        in
        let results =
          match (List.hd ms).Harness.m_outcome with
          | `Complete n -> string_of_int n
          | _ -> "-"
        in
        qname :: results :: List.map Harness.outcome_cell ms)
      Workloads.Micro.queries
  in
  Harness.print_table
    ([ "Query"; "Results" ]
     @ List.map (fun (s : Harness.system) -> s.Harness.sys_name ^ " (ms)") systems)
    rows
