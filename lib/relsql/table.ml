(** Mutable row-store tables with hash indexes.

    Rows are value arrays of the schema's arity, held in a growable array.
    Hash indexes map a column value to a posting of row ids and are
    maintained incrementally through {!insert}, {!set_cell} and
    {!delete_row} — the DB2RDF loader updates cells in place when it
    assigns a predicate to a column of an existing entity row.

    Postings are append-only growable int arrays that tolerate stale
    entries instead of eagerly rewriting on every change: {!delete_row}
    and the removal half of {!set_cell} only bump a staleness counter
    (O(1), no scan, no allocation), and lookups validate each candidate
    against the live bitmap and the current cell value, compacting the
    posting in place once more than half of it is stale. This replaces
    the previous [int list ref] postings whose [List.filter]-per-removal
    made delete-heavy workloads quadratic. *)

type posting = {
  mutable ids : int array;  (* slots 0..len-1; may contain stale rids *)
  mutable len : int;  (* logical entry count (also under run encoding) *)
  mutable stale : int;  (* upper bound on entries that no longer match *)
  mutable nruns : int;
      (* 0 = plain id array; > 0 = [ids] holds [nruns] (start, length)
         pairs of consecutive rids — the delta/run-length encoding
         {!freeze} applies to dense postings (DS/RS lid postings are
         contiguous insertion ranges). Readers iterate both forms via
         {!posting_iter}; any mutation first expands back to plain. *)
}

type index = (Value.t, posting) Hashtbl.t

type t = {
  name : string;
  schema : Schema.t;
  mutable rows : Value.t array array;
      (* boxed row storage. While [packed] is [Some _] this is the
         write-optimized delta side: slot [rid - base] holds the boxed
         row of slot [rid] for [base <= rid < nrows]. *)
  mutable packed : Packed.t option;
      (* compressed columnar image of the read-optimized main, slots
         0..base-1 (frozen mode); reads decode fields on demand, writes
         go to the delta side instead of thawing *)
  mutable base : int;
      (* main/delta boundary: slots below it live in [packed], slots at
         or above it in [rows]. Invariant: 0 whenever [packed = None].
         Rids are stable across freeze/thaw/merge — only {!set_cell}'s
         relocation of a packed row ever moves one. *)
  mutable enc_epoch : int;
      (* bumped by every freeze/thaw: the encoding fingerprint scan-
         cache keys embed (the data — and [version] — never change
         across an encoding switch, only the physical representation) *)
  mutable nrows : int;
  mutable alive : Bytes.t;  (* tombstone bitmap: one byte per row slot *)
  mutable live_count : int;
  indexes : (int, index) Hashtbl.t; (* column position -> index *)
  mutable version : int;
      (* monotonic data-change counter: bumped by insert, set_cell and
         delete_row, never reset — one invalidation signal shared by
         the scan cache and the engine's statement cache *)
  mutable delta_epoch : int;
      (* bumped by every delta-side change of a frozen table (append,
         tombstone punched into the main, relocation) and by every
         merge — the cheap third stamp caches key on, so a delta write
         invalidates them without charging the write a re-encode *)
  mutable thaws : int;
      (* number of times a mutation transparently thawed a frozen
         table back to boxed rows (reported by [rdfstore stats]) *)
  mutable merges : int;
      (* delta-into-main merges performed (thaw + re-freeze cycles the
         merge policy or [Engine.merge] triggered) *)
  mutable tombs : int;
      (* tombstones punched into the frozen main since the last
         freeze/merge (reset when the packed image is rebuilt) *)
  mutable deferred_bytes : int;
      (* re-encoding bytes the delta path avoided: each write that
         would previously have thawed + re-frozen adds the packed
         image's size instead of paying it *)
}

let dummy_row : Value.t array = [||]

let create name schema =
  { name; schema; rows = Array.make 64 dummy_row; packed = None; base = 0;
    enc_epoch = 0; nrows = 0;
    alive = Bytes.make 64 '\001'; live_count = 0;
    indexes = Hashtbl.create 4; version = 0; delta_epoch = 0; thaws = 0;
    merges = 0; tombs = 0; deferred_bytes = 0 }

let name t = t.name
let schema t = t.schema

(** Monotonic counter of data changes (inserts, cell updates, deletes).
    Caches key derived results by it: any change to what a scan could
    observe changes the version. *)
let version t = t.version

(** Number of live (non-deleted) rows. *)
let row_count t = t.live_count

let is_live t rid = Bytes.get t.alive rid = '\001'

(** The compressed columnar image, when the table is frozen. *)
let packed_view t = t.packed

let frozen t = t.packed <> None

(** Encoding fingerprint: changes whenever the physical representation
    (boxed vs packed) flips, without touching {!version}. *)
let enc_epoch t = t.enc_epoch

(** Cheap delta stamp: bumped by every delta-side change of a frozen
    table and by every merge, without touching {!version} semantics or
    charging the write a re-encode. *)
let delta_epoch t = t.delta_epoch

(** Slots covered by the frozen main image (0 when boxed): packed scans
    read rids below it, delta rows sit at or above it. *)
let main_slots t = t.base

(** Boxed rows on the delta side of a frozen table (0 when boxed). *)
let delta_rows t = t.nrows - t.base

(** Tombstones punched into the frozen main since the last freeze or
    merge. *)
let main_tombstones t = t.tombs

(** Delta-into-main merges performed on this table. *)
let merge_count t = t.merges

(** Cumulative re-encoding bytes the delta write path avoided. *)
let deferred_bytes t = t.deferred_bytes

(* Read one cell regardless of representation; no bounds check. *)
let cell_unsafe t rid pos =
  match t.packed with
  | None -> t.rows.(rid).(pos)
  | Some pk ->
    if rid < t.base then Packed.cell pk rid pos
    else t.rows.(rid - t.base).(pos)

(* Read one row regardless of representation; no bounds check. The
   boxed/delta arms return the live array (callers must not mutate),
   the packed arm a fresh decode. *)
let row_unsafe t rid =
  match t.packed with
  | None -> t.rows.(rid)
  | Some pk ->
    if rid < t.base then Packed.row pk rid else t.rows.(rid - t.base)

let ensure_capacity t =
  if t.nrows - t.base = Array.length t.rows then begin
    let bigger = Array.make (2 * max 32 (Array.length t.rows)) dummy_row in
    Array.blit t.rows 0 bigger 0 (t.nrows - t.base);
    t.rows <- bigger
  end;
  if t.nrows = Bytes.length t.alive then begin
    let bigger_alive = Bytes.make (2 * Bytes.length t.alive) '\001' in
    Bytes.blit t.alive 0 bigger_alive 0 t.nrows;
    t.alive <- bigger_alive
  end

(* ------------------------------------------------------------------ *)
(* Posting maintenance                                                  *)
(* ------------------------------------------------------------------ *)

(** Iterate a posting's logical entries in stored order, whichever
    encoding it is in. *)
let posting_iter p (f : int -> unit) =
  if p.nruns = 0 then
    for i = 0 to p.len - 1 do
      f p.ids.(i)
    done
  else
    for r = 0 to p.nruns - 1 do
      let s = p.ids.(2 * r) and l = p.ids.((2 * r) + 1) in
      for j = 0 to l - 1 do
        f (s + j)
      done
    done

(* Expand a run-encoded posting back to a plain id array (any mutation
   path does this first; reads never need to). *)
let posting_expand p =
  if p.nruns > 0 then begin
    let ids = Array.make (max 2 p.len) 0 in
    let k = ref 0 in
    for r = 0 to p.nruns - 1 do
      let s = p.ids.(2 * r) and l = p.ids.((2 * r) + 1) in
      for j = 0 to l - 1 do
        ids.(!k) <- s + j;
        incr k
      done
    done;
    p.ids <- ids;
    p.nruns <- 0
  end

(* Re-encode a compacted (stale = 0) plain posting as (start, length)
   runs when that at least halves the stored words. Preserves iteration
   order exactly: a descending or shuffled tail just becomes length-1
   runs, and those postings stay plain. *)
let posting_try_runs p =
  if p.nruns = 0 && p.stale = 0 && p.len >= 8 then begin
    let nr = ref 1 in
    for i = 1 to p.len - 1 do
      if p.ids.(i) <> p.ids.(i - 1) + 1 then incr nr
    done;
    if 2 * !nr * 2 <= p.len then begin
      let runs = Array.make (2 * !nr) 0 in
      let r = ref 0 in
      let start = ref p.ids.(0) and rlen = ref 1 in
      for i = 1 to p.len - 1 do
        if p.ids.(i) = p.ids.(i - 1) + 1 then incr rlen
        else begin
          runs.(2 * !r) <- !start;
          runs.((2 * !r) + 1) <- !rlen;
          incr r;
          start := p.ids.(i);
          rlen := 1
        end
      done;
      runs.(2 * !r) <- !start;
      runs.((2 * !r) + 1) <- !rlen;
      p.ids <- runs;
      p.nruns <- !nr
    end
  end

let posting_push p rid =
  posting_expand p;
  if p.len = Array.length p.ids then begin
    let bigger = Array.make (2 * max 1 (Array.length p.ids)) 0 in
    Array.blit p.ids 0 bigger 0 p.len;
    p.ids <- bigger
  end;
  p.ids.(p.len) <- rid;
  p.len <- p.len + 1

(** Append a freshly allocated rid — it cannot already be present. *)
let index_add idx v rid =
  match Hashtbl.find_opt idx v with
  | Some p -> posting_push p rid
  | None -> Hashtbl.add idx v { ids = [| rid; 0 |]; len = 1; stale = 0; nruns = 0 }

(** Append a rid that may already sit in the posting as a stale entry
    (a cell moved away and back via {!set_cell}); scans to keep the
    at-most-once invariant. Only the [set_cell] path pays this. *)
let index_add_checked idx v rid =
  match Hashtbl.find_opt idx v with
  | Some p ->
    let present = ref false in
    posting_iter p (fun r -> if r = rid then present := true);
    if not !present then posting_push p rid
    else p.stale <- max 0 (p.stale - 1)
  | None -> Hashtbl.add idx v { ids = [| rid; 0 |]; len = 1; stale = 0; nruns = 0 }

(** Record that [rid] no longer belongs under [v]: O(1) — the entry
    stays in place and lookups filter it out until compaction. *)
let index_unlink idx v =
  match Hashtbl.find_opt idx v with
  | Some p -> p.stale <- p.stale + 1
  | None -> ()

(** Restore boxed row storage from the packed image (the first half of
    a {!merge}, and still available to callers that want a boxed
    table). Delta rows keep their rids — they shift down into the
    unified boxed array. Postings keep whatever encoding they have —
    they expand lazily on first push. *)
let thaw t =
  match t.packed with
  | None -> ()
  | Some pk ->
    let arity = Schema.arity t.schema in
    let rows = Array.make (max 64 t.nrows) dummy_row in
    for rid = 0 to t.base - 1 do
      rows.(rid) <- Array.init arity (fun pos -> Packed.cell pk rid pos)
    done;
    for rid = t.base to t.nrows - 1 do
      rows.(rid) <- t.rows.(rid - t.base)
    done;
    t.rows <- rows;
    t.packed <- None;
    t.base <- 0;
    t.tombs <- 0;
    t.enc_epoch <- t.enc_epoch + 1;
    t.thaws <- t.thaws + 1

(** Number of times a mutation transparently thawed this table. *)
let thaw_count t = t.thaws

(* Bookkeeping shared by every write that lands on the delta side of a
   frozen table instead of thawing it: the stamp caches key on, and the
   re-encode bytes the write did not pay. *)
let note_delta_write t pk =
  t.delta_epoch <- t.delta_epoch + 1;
  t.deferred_bytes <- t.deferred_bytes + (8 * Packed.packed_words pk)

(** [insert t row] appends [row] and returns its row id. On a frozen
    table the row lands in the boxed delta side — no thaw, no
    re-encode. The row array is owned by the table afterwards; callers
    must not mutate it directly (use {!set_cell}). *)
let insert t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): arity %d, expected %d" t.name
         (Array.length row) (Schema.arity t.schema));
  ensure_capacity t;
  let rid = t.nrows in
  t.rows.(rid - t.base) <- row;
  Bytes.set t.alive rid '\001';
  t.nrows <- t.nrows + 1;
  t.live_count <- t.live_count + 1;
  t.version <- t.version + 1;
  (match t.packed with Some pk -> note_delta_write t pk | None -> ());
  Hashtbl.iter (fun pos idx -> index_add idx row.(pos) rid) t.indexes;
  rid

let get t rid =
  if rid < 0 || rid >= t.nrows then invalid_arg "Table.get: bad row id";
  row_unsafe t rid

let cell t rid pos =
  if rid < 0 || rid >= t.nrows then invalid_arg "Table.cell: bad row id";
  cell_unsafe t rid pos

(** Update one cell, keeping any index on that column consistent, and
    return the row's id after the write — which may differ from [rid]:
    writing to a row of the frozen main cannot touch the immutable
    packed image, so the row is {e relocated} — its main slot is
    tombstoned and the updated copy appended to the boxed delta side.
    Writing an equal value is a no-op (same rid, no version bump);
    boxed and delta rows update in place. Callers that track rids must
    adopt the returned id. *)
let set_cell t rid pos v =
  if rid < 0 || rid >= t.nrows then invalid_arg "Table.set_cell: bad row id";
  match t.packed with
  | Some pk when rid < t.base ->
    let row = Packed.row pk rid in
    if Value.equal row.(pos) v then rid
    else begin
      (* Relocate: tombstone the packed slot, re-insert the updated
         copy as a delta row. Index entries of the old rid go stale in
         place (the posting validators skip them); the new rid is
         appended fresh. *)
      Hashtbl.iter (fun p idx -> index_unlink idx row.(p)) t.indexes;
      Bytes.set t.alive rid '\000';
      t.tombs <- t.tombs + 1;
      row.(pos) <- v;
      ensure_capacity t;
      let rid' = t.nrows in
      t.rows.(rid' - t.base) <- row;
      Bytes.set t.alive rid' '\001';
      t.nrows <- t.nrows + 1;
      t.version <- t.version + 1;
      note_delta_write t pk;
      Hashtbl.iter (fun p idx -> index_add idx row.(p) rid') t.indexes;
      rid'
    end
  | packed ->
    let row =
      match packed with
      | None -> t.rows.(rid)
      | Some _ -> t.rows.(rid - t.base)
    in
    if Value.equal row.(pos) v then rid
    else begin
      (match Hashtbl.find_opt t.indexes pos with
       | Some idx ->
         index_unlink idx row.(pos);
         index_add_checked idx v rid
       | None -> ());
      t.version <- t.version + 1;
      (match packed with Some pk -> note_delta_write t pk | None -> ());
      row.(pos) <- v;
      rid
    end

(** Delete a row: it disappears from scans, lookups and {!row_count}.
    The slot is tombstoned (ids of other rows are stable) whichever
    side it lives on — deleting from a frozen table punches a tombstone
    into the bitmap over the packed main (or the delta row) with no
    thaw and no re-encode. Idempotent. *)
let delete_row t rid =
  if rid < 0 || rid >= t.nrows then invalid_arg "Table.delete_row: bad row id";
  if is_live t rid then begin
    Hashtbl.iter
      (fun pos idx -> index_unlink idx (cell_unsafe t rid pos))
      t.indexes;
    Bytes.set t.alive rid '\000';
    t.live_count <- t.live_count - 1;
    t.version <- t.version + 1;
    match t.packed with
    | Some pk ->
      if rid < t.base then t.tombs <- t.tombs + 1;
      note_delta_write t pk
    | None -> ()
  end

(** Build (or rebuild) a hash index on the column at position [pos]. *)
let create_index t pos =
  if pos < 0 || pos >= Schema.arity t.schema then
    invalid_arg "Table.create_index: bad column";
  let idx : index = Hashtbl.create (max 16 t.nrows) in
  for rid = 0 to t.nrows - 1 do
    if is_live t rid then index_add idx (cell_unsafe t rid pos) rid
  done;
  Hashtbl.replace t.indexes pos idx

let create_index_on t col_name =
  create_index t (Schema.position_exn t.schema col_name)

let has_index t pos = Hashtbl.mem t.indexes pos

let indexed_columns t =
  Hashtbl.fold (fun pos _ acc -> pos :: acc) t.indexes []

(* A posting entry is valid when its row is live and still carries the
   indexed value (set_cell may have moved it elsewhere). *)
let entry_valid t pos v rid = is_live t rid && Value.equal (cell_unsafe t rid pos) v

(* Rewrite a posting to its valid entries once more than half are stale
   (amortized against the lookups that observed them). *)
let maybe_compact t idx pos v p valid =
  if p.stale > 0 && 2 * valid < p.len then begin
    if valid = 0 then Hashtbl.remove idx v
    else begin
      let compact = Array.make (max 2 valid) 0 in
      let k = ref 0 in
      posting_iter p (fun rid ->
          if entry_valid t pos v rid then begin
            compact.(!k) <- rid;
            incr k
          end);
      p.ids <- compact;
      p.len <- valid;
      p.stale <- 0;
      p.nruns <- 0
    end
  end

let find_index t pos =
  match Hashtbl.find_opt t.indexes pos with
  | None -> invalid_arg ("Table.lookup: no index on column of " ^ t.name)
  | Some idx -> idx

(** [lookup_iter t pos v f] calls [f] on each live row id whose column
    [pos] currently equals [v], in insertion order, without allocating.
    Requires an index on [pos]. *)
let lookup_iter t pos v (f : int -> unit) =
  let idx = find_index t pos in
  match Hashtbl.find idx v with
  | exception Not_found -> ()
  | p ->
    if p.stale = 0 then
      (* Every entry is live and value-current (delete_row and set_cell
         both bump [stale]), so skip per-entry validation. *)
      posting_iter p f
    else begin
      let valid = ref 0 in
      posting_iter p (fun rid ->
          if entry_valid t pos v rid then begin
            incr valid;
            f rid
          end);
      maybe_compact t idx pos v p !valid
    end

(** [prober t pos] pre-resolves the index on [pos] for repeated probes
    (index nested-loop joins): the returned function behaves like
    {!lookup_iter} with the column-to-index hash lookup hoisted out of
    the per-probe path. *)
let prober t pos =
  let idx = find_index t pos in
  fun v (f : int -> unit) ->
    (* [find] over [find_opt]: no option allocation on the hot path. *)
    match Hashtbl.find idx v with
    | exception Not_found -> ()
    | p ->
      if p.stale = 0 then posting_iter p f
      else begin
        let valid = ref 0 in
        posting_iter p (fun rid ->
            if entry_valid t pos v rid then begin
              incr valid;
              f rid
            end);
        maybe_compact t idx pos v p !valid
      end

(** [prober_ro t pos] is a {!prober} that never compacts: it validates
    stale entries on every probe but leaves postings untouched, so the
    returned closure is safe to share across concurrently probing
    domains (the table must not be mutated while they run). Parallel
    index-join probes use this; the sequential prober keeps the
    amortized compaction. *)
let prober_ro t pos =
  let idx = find_index t pos in
  fun v (f : int -> unit) ->
    match Hashtbl.find idx v with
    | exception Not_found -> ()
    | p ->
      if p.stale = 0 then posting_iter p f
      else posting_iter p (fun rid -> if entry_valid t pos v rid then f rid)

(** [lookup t pos v] is the ids of live rows whose column [pos] equals
    [v], in insertion order. Requires an index on [pos]. *)
let lookup t pos v =
  let idx = find_index t pos in
  match Hashtbl.find_opt idx v with
  | None -> [||]
  | Some p ->
    if p.stale = 0 && p.nruns = 0 then Array.sub p.ids 0 p.len
    else if p.stale = 0 then begin
      let acc = Array.make p.len 0 in
      let k = ref 0 in
      posting_iter p (fun rid ->
          acc.(!k) <- rid;
          incr k);
      acc
    end
    else begin
      let acc = Array.make p.len 0 in
      let valid = ref 0 in
      posting_iter p (fun rid ->
          if entry_valid t pos v rid then begin
            acc.(!valid) <- rid;
            incr valid
          end);
      maybe_compact t idx pos v p !valid;
      Array.sub acc 0 !valid
    end

(** [iter_range f t lo hi] is {!iter} restricted to slots
    [lo <= rid < hi]. On a frozen table the range splits at the
    main/delta boundary: packed slots decode, delta slots read boxed. *)
let iter_range f t lo hi =
  match t.packed with
  | None ->
    for rid = lo to hi - 1 do
      if is_live t rid then f rid t.rows.(rid)
    done
  | Some pk ->
    for rid = lo to min hi t.base - 1 do
      if is_live t rid then f rid (Packed.row pk rid)
    done;
    for rid = max lo t.base to hi - 1 do
      if is_live t rid then f rid t.rows.(rid - t.base)
    done

let iter f t = iter_range f t 0 t.nrows

(** Row slots ever allocated, including tombstoned ones — the iteration
    space of {!iter} and {!iter_range} (parallel scans morselize over
    it). *)
let slot_count t = t.nrows

let fold f init t =
  let acc = ref init in
  iter (fun rid row -> acc := f !acc rid row) t;
  !acc

(** Simulated on-disk footprint in bytes under the value-compressed
    storage model: per-row header, a null bitmap of one bit per column,
    and per-value sizes (see {!Value.storage_size}, where NULLs are
    free — the bitmap carries them). Used by the Section 2.3 NULL
    experiment: widening a relation with NULL columns costs bitmap bits,
    not value bytes. *)
let storage_size t =
  let row_header = 8 + ((Schema.arity t.schema + 7) / 8) in
  fold
    (fun acc _ row ->
      Array.fold_left (fun a v -> a + Value.storage_size v) (acc + row_header) row)
    0 t

(* ------------------------------------------------------------------ *)
(* Radix-partitioned join hash                                          *)
(* ------------------------------------------------------------------ *)

(** The partition-indexed prober of the parallel hash-join build: a
    power-of-two number of disjoint per-partition sub-tables mapping a
    key value to a posting of build-row ids, "merged by pointer" — the
    sub-table array {e is} the merged structure, probes route by key
    hash without touching any other partition.

    Key equality and hashing are {!Value.equal} / {!Value.hash} — the
    same notions the executor's sequential single-key build uses — so a
    partitioned build groups exactly the rows the sequential build
    groups. Rows must be added in ascending build order per partition
    (each partition is owned by one builder at a time); postings then
    replay matches in global build order, which keeps partitioned
    output bit-identical to the sequential join. *)
module Join_hash = struct
  module VH = Hashtbl.Make (struct
    type nonrec t = Value.t
    let equal = Value.equal
    let hash = Value.hash
  end)

  type t = {
    mask : int;  (* parts - 1; parts is a power of two *)
    subs : posting VH.t array;
  }

  let create ~parts =
    if parts <= 0 || parts land (parts - 1) <> 0 then
      invalid_arg "Join_hash.create: parts must be a positive power of two";
    { mask = parts - 1; subs = Array.init parts (fun _ -> VH.create 64) }

  let parts h = Array.length h.subs

  (** Which partition a key routes to (NULL keys never enter a build;
      callers drop them before routing). *)
  let part_of h k = Value.hash k land h.mask

  (** [add h p k rid] appends [rid] under [k] in sub-table [p]. The
      caller routes [p = part_of h k] and must own partition [p]
      exclusively while adding (the parallel build's invariant). *)
  let add h p k rid =
    let sub = h.subs.(p) in
    match VH.find sub k with
    | pst -> posting_push pst rid
    | exception Not_found ->
      VH.add sub k { ids = [| rid; 0 |]; len = 1; stale = 0; nruns = 0 }

  (** Iterate the build rows matching [k] in build (insertion) order. *)
  let iter_matches h k (f : int -> unit) =
    match VH.find h.subs.(Value.hash k land h.mask) k with
    | exception Not_found -> ()
    | p ->
      for i = 0 to p.len - 1 do
        f p.ids.(i)
      done
end

(* ------------------------------------------------------------------ *)
(* Freezing: compressed columnar mode                                   *)
(* ------------------------------------------------------------------ *)

(** Switch the table to compressed columnar storage: every posting is
    compacted and (when dense) run-length encoded, all row slots are
    bit-packed into a {!Packed.t} with zone maps, and the boxed rows
    are dropped. Purely an encoding change — {!version} is untouched,
    {!enc_epoch} bumps. Reads (including index probes) work on the
    frozen form; {!insert}, {!set_cell} and {!delete_row} write to the
    delta side without disturbing the packed main — {!merge} folds the
    delta back in. Idempotent (a frozen table, delta or not, is left
    alone); a no-op on an empty table. *)
let freeze t =
  if t.packed = None && t.nrows > 0 then begin
    Hashtbl.iter
      (fun pos idx ->
        (* snapshot: compaction may remove now-empty postings *)
        let entries = Hashtbl.fold (fun v p acc -> (v, p) :: acc) idx [] in
        List.iter
          (fun (v, p) ->
            posting_expand p;
            if p.stale > 0 then begin
              let k = ref 0 in
              for i = 0 to p.len - 1 do
                let rid = p.ids.(i) in
                if entry_valid t pos v rid then begin
                  p.ids.(!k) <- rid;
                  incr k
                end
              done;
              p.len <- !k;
              p.stale <- 0;
              if p.len = 0 then Hashtbl.remove idx v
            end;
            posting_try_runs p)
          entries)
      t.indexes;
    t.packed <-
      Some
        (Packed.pack ~zones:true ~ncols:(Schema.arity t.schema) ~nrows:t.nrows
           (fun rid pos -> t.rows.(rid).(pos))
           ~live:(fun rid -> is_live t rid));
    t.rows <- [||];
    t.base <- t.nrows;
    t.tombs <- 0;
    t.enc_epoch <- t.enc_epoch + 1
  end

(** Fold the delta side back into the packed main: decode, re-pack the
    unified slots (fresh zone maps, compacted + re-run-encoded
    postings) and start an empty delta. Rids are stable. A no-op on a
    boxed table or a frozen one with neither delta rows nor fresh main
    tombstones. The thaw performed internally is not a "transparent
    thaw" for accounting — {!thaw_count} measures write-path churn, so
    it is restored; {!merge_count} counts the merge instead. *)
let merge t =
  if t.packed <> None && (t.nrows > t.base || t.tombs > 0) then begin
    let saved_thaws = t.thaws in
    thaw t;
    freeze t;
    t.thaws <- saved_thaws;
    t.merges <- t.merges + 1;
    t.delta_epoch <- t.delta_epoch + 1
  end

(** An immutable copy-on-write view of the table's current contents.

    A boxed source is frozen first (compacting postings and bit-packing
    the rows); a frozen source is captured {e as it is} — live delta
    included, no merge, no re-encode. Either way the snapshot
    {e shares} the packed image — O(1) in the main's row data — while
    the delta rows, the tombstone bitmap and the postings are copied:
    the writer keeps mutating delta rows in place, lookups compact
    postings in place, and future deletes flip source tombstones, so
    none of those may be shared. The shared {!Packed.t} is safe because
    no write path ever mutates a packed image in place — writes land on
    the delta side (or relocate into it), and a merge builds a {e new}
    image — leaving the snapshot's untouched forever. The snapshot
    carries the source's [(version, enc_epoch, delta_epoch)] stamps at
    capture time. *)
let snapshot t =
  if t.packed = None then freeze t;
  let indexes = Hashtbl.create (max 4 (Hashtbl.length t.indexes)) in
  Hashtbl.iter
    (fun pos idx ->
      let copy : index = Hashtbl.create (max 16 (Hashtbl.length idx)) in
      Hashtbl.iter
        (fun v p ->
          Hashtbl.add copy v
            { ids = Array.copy p.ids; len = p.len; stale = p.stale;
              nruns = p.nruns })
        idx;
      Hashtbl.add indexes pos copy)
    t.indexes;
  let dlen = t.nrows - t.base in
  { name = t.name; schema = t.schema;
    (* [packed = None] only when the table is empty (freeze no-ops);
       give the snapshot its own empty boxed storage in that case.
       Delta rows are deep-copied: the writer updates them in place. *)
    rows =
      (if t.packed = None then Array.make 64 dummy_row
       else Array.init dlen (fun i -> Array.copy t.rows.(i)));
    packed = t.packed; base = t.base; enc_epoch = t.enc_epoch;
    nrows = t.nrows;
    alive = Bytes.copy t.alive; live_count = t.live_count; indexes;
    version = t.version; delta_epoch = t.delta_epoch; thaws = 0;
    merges = 0; tombs = t.tombs; deferred_bytes = 0 }

(** Per-table memory accounting for the compressed representation (the
    [rdfstore stats] report). Sizes are heap-word estimates times the
    word size; [boxed_bytes] is what the same slots cost (or would
    cost) as boxed rows. *)
type compression_report = {
  r_table : string;
  r_frozen : bool;
  r_live_rows : int;
  r_slots : int;
  r_boxed_bytes : int;
  r_packed_bytes : int;  (* 0 when not frozen *)
  r_col_bits : (string * int) list;  (* bits per column (frozen only) *)
  r_posting_entries : int;  (* logical posting entries across indexes *)
  r_posting_words : int;  (* stored posting words after run encoding *)
  r_thaws : int;  (* mutations that transparently thawed a frozen table *)
  r_delta_rows : int;  (* boxed rows on the delta side (frozen only) *)
  r_delta_bytes : int;  (* boxed footprint of those delta rows *)
  r_tombstones : int;  (* tombstones punched into the frozen main *)
  r_merges : int;  (* delta-into-main merges performed *)
  r_deferred_bytes : int;  (* re-encode bytes the delta path avoided *)
}

(* Boxed heap footprint of the row slots stored in [t.rows.(lo..hi-1)]. *)
let boxed_bytes_of_range t lo hi =
  let arity = Schema.arity t.schema in
  let cells = ref 0 in
  for i = lo to hi - 1 do
    let row = t.rows.(i) in
    for pos = 0 to arity - 1 do
      cells := !cells + Packed.value_heap_words row.(pos)
    done
  done;
  8 * (((hi - lo) * (1 + arity)) + !cells)

let compression_report t =
  let entries = ref 0 and stored = ref 0 in
  Hashtbl.iter
    (fun _ idx ->
      Hashtbl.iter
        (fun _ p ->
          entries := !entries + p.len;
          stored := !stored + (if p.nruns > 0 then 2 * p.nruns else p.len))
        idx)
    t.indexes;
  let arity = Schema.arity t.schema in
  match t.packed with
  | Some pk ->
    let delta = t.nrows - t.base in
    { r_table = t.name; r_frozen = true; r_live_rows = t.live_count;
      r_slots = t.nrows; r_boxed_bytes = 8 * Packed.boxed_words pk;
      r_packed_bytes = 8 * Packed.packed_words pk;
      r_col_bits =
        List.init arity (fun i ->
            (Schema.column t.schema i, Packed.col_bits pk i));
      r_posting_entries = !entries; r_posting_words = !stored;
      r_thaws = t.thaws; r_delta_rows = delta;
      r_delta_bytes = boxed_bytes_of_range t 0 delta;
      r_tombstones = t.tombs; r_merges = t.merges;
      r_deferred_bytes = t.deferred_bytes }
  | None ->
    { r_table = t.name; r_frozen = false; r_live_rows = t.live_count;
      r_slots = t.nrows;
      r_boxed_bytes = boxed_bytes_of_range t 0 t.nrows;
      r_packed_bytes = 0; r_col_bits = [];
      r_posting_entries = !entries; r_posting_words = !stored;
      r_thaws = t.thaws; r_delta_rows = 0; r_delta_bytes = 0;
      r_tombstones = 0; r_merges = t.merges;
      r_deferred_bytes = t.deferred_bytes }

(** Fraction of cells that are NULL across the given column positions
    (live rows only). *)
let null_fraction t positions =
  if t.live_count = 0 || positions = [] then 0.0
  else begin
    let nulls = ref 0 in
    iter
      (fun _ row ->
        List.iter (fun p -> if Value.is_null row.(p) then incr nulls) positions)
      t;
    float_of_int !nulls /. float_of_int (t.live_count * List.length positions)
  end
