lib/sparql/ref_eval.ml: Ast Fun Hashtbl List Map Option Rdf Stdlib String Unix
