lib/relsql/expr_eval.ml: Array Float Hashtbl List Option Sql_ast Stdlib String Value
