(** Shared vocabulary of the worst-case-optimal multiway join.

    The planner recognizes a flat inner-equi-join select over base
    tables and describes it as a list of {!atom}s: one per table alias,
    each column either pinned to a constant or assigned to a join
    variable (an equivalence class of columns connected by equality
    conjuncts). The {!selector} — installed on the database by the
    layer that owns cardinality statistics — decides per query region
    whether the leapfrog operator should replace the binary join tree,
    and supplies the cardinality estimate recorded in the plan. Keeping
    these types free of planner/executor dependencies lets
    {!Database} hold the selector without a module cycle. *)

type term =
  | W_const of Value.t  (** column must equal this constant *)
  | W_var of int  (** column belongs to join-variable class [n] *)

type atom = {
  w_table : string;  (** base-table name (never a materialized CTE) *)
  w_alias : string;
  w_cols : (string * term) list;
      (** constrained columns; a column may appear more than once
          (e.g. pinned to a constant and joined to a variable) *)
}

(** What the planner hands the selector: the atoms, the number of
    join-variable classes, and the planner's own cardinality estimate
    of the binary join tree it would otherwise build. *)
type request = { atoms : atom list; n_vars : int; binary_est : int }

type decision = {
  use_wcoj : bool;
  est_rows : int;  (** estimated output cardinality (either plan) *)
}

type selector = request -> decision

(** Variables of an atom, deduplicated, in column order. *)
let atom_vars a =
  List.sort_uniq compare
    (List.filter_map
       (function _, W_var v -> Some v | _, W_const _ -> None)
       a.w_cols)
