(** Compressed columnar storage: bit-packed dictionary columns with
    per-block zone maps.

    A packed relation stores each column as a flat [int array] of
    fixed-width bit fields over small integer {e codes}, one code per
    row slot. Code 0 is reserved for NULL. Two encodings are chosen
    per column at pack time, whichever yields the narrower field:

    - {e Direct}: every non-null cell is a non-negative [Value.Int]
      (dictionary ids — the dominant DB2RDF case) and the code is the
      integer plus one. No decode table at all.
    - {e Dict}: codes index a first-occurrence decode array of the
      column's distinct values. Width is [bits(#distinct)].

    Fields are aligned: a 63-bit word holds [63 / width] fields and no
    field straddles a word boundary, so a field read is one load, one
    shift and one mask.

    Every 1024-row block of every column also carries a {e zone map}:
    null/non-null counts, a float min/max over the numeric cells and a
    {!Value.compare} min/max over all non-null cells. A conservative
    predicate-vs-zone test lets scans skip whole blocks without
    unpacking a single field; the split between the numeric and the
    total-order range is what keeps skipping sound under
    {!Expr_eval}'s Int/Real comparison coercion.

    Equality predicates additionally compile to {e candidate codes}
    and run word-at-a-time: the constant's code is broadcast across
    the word and a SWAR zero-field test rejects 63/width rows per
    compare (Hacker's Delight 6-1; exact for existence, per-field
    confirmation on hits). The caller re-checks every surviving row
    with the original compiled predicate, so both pruning layers only
    ever have to be conservative — output stays bit-identical to the
    uncompressed scan. *)

(** Rows per zone-map block. Parallel scan morsels align to this so a
    block is never split across workers. *)
let block_rows = 1024

type zone = {
  z_nonnull : int;  (* non-null cells among live rows of the block *)
  z_nulls : int;  (* null cells among live rows *)
  z_nnum : int;  (* numeric (Int/Real) cells among the non-null ones *)
  z_num_lo : float;  (* float range of the numeric cells (NaNs excluded *)
  z_num_hi : float;  (* from the range but counted in [z_nnum]) *)
  z_has_nan : bool;  (* some numeric cell is NaN *)
  z_lo : Value.t;  (* Value.compare range over all non-null cells *)
  z_hi : Value.t;
}

type col = {
  width : int;  (* bits per field, 1..62 *)
  fpw : int;  (* fields per 63-bit word *)
  fmask : int;  (* (1 lsl width) - 1 *)
  ones : int;  (* 1 broadcast across the fields of a word *)
  highs : int;  (* 1 lsl (width-1) broadcast across the fields *)
  words : int array;
  direct : bool;  (* code = int value + 1, no decode table *)
  dmax : int;  (* Direct: largest encodable int value *)
  decode : Value.t array;  (* Dict: code-1 -> value; [||] when direct *)
  zones : zone array;  (* one per block; [||] when packed without zones *)
  boxed_cell_words : int;
      (* heap words the column's cells would cost as boxed values
         (excluding the per-row array), for the compression report *)
}

type t = { nrows : int; cols : col array }

let nrows t = t.nrows
let ncols t = Array.length t.cols
let block_count t = (t.nrows + block_rows - 1) / block_rows
let has_zones t = Array.length t.cols > 0 && t.cols.(0).zones <> [||]

(* Heap words of one boxed value: variant blocks are header + field;
   strings add their own block. Shared strings are counted per cell —
   this is an estimate for reporting, not an allocator. *)
let value_heap_words = function
  | Value.Null -> 0
  | Value.Bool _ | Value.Int _ | Value.Lid _ | Value.Real _ -> 2
  | Value.Str s -> 2 + 1 + ((String.length s + 8) / 8)

let bits_needed n =
  let rec go b v = if v = 0 then max 1 b else go (b + 1) (v lsr 1) in
  go 0 n

let broadcast width fpw v =
  let rec go acc i = if i = fpw then acc else go ((acc lsl width) lor v) (i + 1) in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Packing                                                             *)
(* ------------------------------------------------------------------ *)

(** [pack ~zones ~ncols ~nrows get ~live] packs the relation whose cell
    [(rid, pos)] is [get rid pos]. All [nrows] slots are packed —
    including tombstoned ones, so rid identity is preserved — while
    zone maps aggregate only slots with [live rid] (dead slots can
    never survive a scan, so excluding them tightens the maps). *)
let pack ?(zones = true) ~ncols ~nrows (get : int -> int -> Value.t)
    ~(live : int -> bool) : t =
  let nblocks = (nrows + block_rows - 1) / block_rows in
  let pack_col pos =
    (* First pass: assign dictionary codes in first-occurrence order,
       test Direct feasibility, and account the boxed-equivalent size. *)
    let code_of : (Value.t, int) Hashtbl.t = Hashtbl.create 64 in
    let decode_rev = ref [] in
    let ndistinct = ref 0 in
    let direct_ok = ref true in
    let dmax = ref 0 in
    let boxed = ref 0 in
    for rid = 0 to nrows - 1 do
      let v = get rid pos in
      boxed := !boxed + value_heap_words v;
      match v with
      | Value.Null -> ()
      | _ ->
        (match v with
         | Value.Int x when x >= 0 -> if x > !dmax then dmax := x
         | _ -> direct_ok := false);
        if not (Hashtbl.mem code_of v) then begin
          incr ndistinct;
          Hashtbl.add code_of v !ndistinct;
          decode_rev := v :: !decode_rev
        end
    done;
    let dict_width = bits_needed (max 1 !ndistinct) in
    let direct_width = bits_needed (!dmax + 1) in
    let direct = !direct_ok && direct_width <= 62 && direct_width <= dict_width in
    let width = if direct then direct_width else dict_width in
    let fpw = 63 / width in
    let words = Array.make ((nrows + fpw - 1) / max 1 fpw) 0 in
    let code_of_value v =
      if Value.is_null v then 0
      else if direct then (match v with Value.Int x -> x + 1 | _ -> assert false)
      else Hashtbl.find code_of v
    in
    for rid = 0 to nrows - 1 do
      let code = code_of_value (get rid pos) in
      words.(rid / fpw) <- words.(rid / fpw) lor (code lsl (rid mod fpw * width))
    done;
    let zmaps =
      if not zones then [||]
      else
        Array.init nblocks (fun bi ->
            let lo = bi * block_rows and hi = min nrows ((bi + 1) * block_rows) in
            let nonnull = ref 0 and nulls = ref 0 and nnum = ref 0 in
            let num_lo = ref infinity and num_hi = ref neg_infinity in
            let has_nan = ref false in
            let vlo = ref Value.Null and vhi = ref Value.Null in
            for rid = lo to hi - 1 do
              if live rid then begin
                let v = get rid pos in
                if Value.is_null v then incr nulls
                else begin
                  incr nonnull;
                  (match Value.as_float v with
                   | Some x ->
                     incr nnum;
                     if Float.is_nan x then has_nan := true
                     else begin
                       if x < !num_lo then num_lo := x;
                       if x > !num_hi then num_hi := x
                     end
                   | None -> ());
                  if !nonnull = 1 then begin
                    vlo := v;
                    vhi := v
                  end
                  else begin
                    if Value.compare v !vlo < 0 then vlo := v;
                    if Value.compare v !vhi > 0 then vhi := v
                  end
                end
              end
            done;
            { z_nonnull = !nonnull; z_nulls = !nulls; z_nnum = !nnum;
              z_num_lo = !num_lo; z_num_hi = !num_hi; z_has_nan = !has_nan;
              z_lo = !vlo; z_hi = !vhi })
    in
    let decode =
      if direct then [||] else Array.of_list (List.rev !decode_rev)
    in
    { width; fpw; fmask = (1 lsl width) - 1;
      ones = broadcast width fpw 1;
      highs = broadcast width fpw (1 lsl (width - 1));
      words; direct; dmax = !dmax; decode; zones = zmaps;
      boxed_cell_words = !boxed }
  in
  { nrows; cols = Array.init ncols pack_col }

(* ------------------------------------------------------------------ *)
(* Field access                                                        *)
(* ------------------------------------------------------------------ *)

let[@inline] code_at c rid = (c.words.(rid / c.fpw) lsr (rid mod c.fpw * c.width)) land c.fmask

(* Dict columns decode through their shared boxed [decode] array, but a
   Direct decode would allocate a fresh [Value.Int] per field read —
   and Direct is what every id-valued column (dictionary ids, colors,
   row links) compiles to, so per-probe reads on the index-nested-loop
   path would pay one minor allocation per cell. Small non-negative
   ints, which is nearly all of them, share this preallocated pool
   instead; [Value.t] is immutable, so sharing is unobservable. *)
let shared_ints = Array.init 65536 (fun i -> Value.Int i)

let[@inline] boxed_int x =
  if x >= 0 && x < 65536 then Array.unsafe_get shared_ints x else Value.Int x

let[@inline] decode_code c code =
  if code = 0 then Value.Null
  else if c.direct then boxed_int (code - 1)
  else c.decode.(code - 1)

(** [cell t rid pos] decodes one field. *)
let cell t rid pos =
  let c = t.cols.(pos) in
  decode_code c (code_at c rid)

(** Decode row [rid] into a fresh array. *)
let row t rid = Array.init (ncols t) (fun pos -> cell t rid pos)

(** [read_cols t rid positions dst] decodes only the listed column
    positions of row [rid] into [dst] at those same positions; other
    slots of [dst] are left untouched (callers reuse [dst] as scratch
    and only ever read the positions they asked for). *)
let read_cols t rid (positions : int array) (dst : Value.t array) =
  for i = 0 to Array.length positions - 1 do
    let pos = positions.(i) in
    let c = t.cols.(pos) in
    dst.(pos) <- decode_code c (code_at c rid)
  done

(* ------------------------------------------------------------------ *)
(* Size accounting                                                     *)
(* ------------------------------------------------------------------ *)

(** Approximate heap words of the packed representation (bit words,
    decode tables including their boxed values, zone maps). *)
let packed_words t =
  Array.fold_left
    (fun acc c ->
      let decode_w =
        Array.fold_left (fun a v -> a + value_heap_words v)
          (1 + Array.length c.decode)
          c.decode
      in
      acc + 12 (* col record *) + 1 + Array.length c.words + decode_w
      + (12 * Array.length c.zones))
    2 t.cols

(** Heap words the same slots would cost as boxed [Value.t array] rows:
    one row array per slot plus every cell's boxed payload. *)
let boxed_words t =
  Array.fold_left
    (fun acc c -> acc + c.boxed_cell_words)
    (t.nrows * (1 + ncols t))
    t.cols

let col_bits t pos = t.cols.(pos).width

(* ------------------------------------------------------------------ *)
(* Equality candidate codes                                            *)
(* ------------------------------------------------------------------ *)

(* 2^53: |ints| up to this bound round-trip exactly through float, so
   the Int<->Real equality coercion has a unique witness on each side.
   Above it several Ints can collapse onto one float and a candidate
   list would no longer be exact — those constants refuse a prefilter
   instead of risking a false reject. *)
let max_exact_float_int = 9007199254740992

(* All codes whose decoded value is structurally equal to [v]
   (Value.equal; a Dict column stores one code per distinct value, but
   NaN payloads can duplicate, hence "all"). *)
let structural_codes c v acc =
  if c.direct then
    match v with
    | Value.Int x when x >= 0 && x <= c.dmax -> (x + 1) :: acc
    | _ -> acc
  else begin
    let acc = ref acc in
    for i = Array.length c.decode - 1 downto 0 do
      if Value.equal c.decode.(i) v then acc := (i + 1) :: !acc
    done;
    !acc
  end

(** The exact set of codes of column [pos] whose decoded value compares
    equal to [v] under {!Expr_eval}'s comparison semantics (including
    the Int/Real coercion), or [None] when no exact finite set exists.
    [Some []] means the column provably contains no matching cell. *)
let eq_codes_col c v =
  match v with
  | Value.Null -> Some []
  | Value.Int x ->
    (* Int cells: int equality — only x. Real cells: r = float x, a
       single float (exact even above 2^53: float x is one value). *)
    Some (structural_codes c (Value.Real (float_of_int x))
            (structural_codes c v []))
  | Value.Real f ->
    if Float.is_integer f && Float.abs f > float_of_int max_exact_float_int
    then None (* several Ints may equal f; candidate set not exact *)
    else begin
      let acc = structural_codes c v [] in
      let acc =
        if Float.is_integer f && Float.abs f <= float_of_int max_exact_float_int
        then structural_codes c (Value.Int (int_of_float f)) acc
        else acc
      in
      Some acc
    end
  | Value.Bool _ | Value.Str _ | Value.Lid _ -> Some (structural_codes c v [])

let eq_codes t pos v = eq_codes_col t.cols.(pos) v

(* ------------------------------------------------------------------ *)
(* Word-at-a-time equality scan                                        *)
(* ------------------------------------------------------------------ *)

(** [iter_eq_col c codes lo hi f] calls [f rid] for every slot
    [lo <= rid < hi] whose field in column [c] equals one of [codes],
    in ascending order. Code [0] finds NULL fields; the SWAR word test
    works for it unchanged. Words are rejected wholesale by a SWAR
    zero-field test on [word lxor broadcast(code)] — the test is exact
    for "some field matches", and matching words confirm each field
    individually. *)
let iter_eq_col c (codes : int array) lo hi (f : int -> unit) =
  if Array.length codes > 0 && hi > lo then begin
    let w = c.width and fpw = c.fpw in
    let nc = Array.length codes in
    let c0 = codes.(0) in
    let bcasts = Array.map (fun code -> code * c.ones) codes in
    let wlo = lo / fpw and whi = (hi - 1) / fpw in
    for wi = wlo to whi do
      let x = c.words.(wi) in
      let hit = ref false in
      for k = 0 to nc - 1 do
        if not !hit then begin
          let y = x lxor bcasts.(k) in
          if w = 1 then begin
            (* one-bit fields: a match is a zero bit among the used
               fields; padding fields (code 0 vs pattern 1) read 1 *)
            if y <> c.ones then hit := true
          end
          else if (y - c.ones) land lnot y land c.highs <> 0 then hit := true
        end
      done;
      if !hit then begin
        let base = wi * fpw in
        let flo = if base < lo then lo - base else 0 in
        let fhi = min fpw (hi - base) in
        for fi = flo to fhi - 1 do
          let code = (x lsr (fi * w)) land c.fmask in
          if code = c0 then f (base + fi)
          else if nc > 1 then begin
            let m = ref false in
            for k = 1 to nc - 1 do
              if code = codes.(k) then m := true
            done;
            if !m then f (base + fi)
          end
        done
      end
    done
  end

let iter_eq t pos codes lo hi f = iter_eq_col t.cols.(pos) codes lo hi f

(* ------------------------------------------------------------------ *)
(* Zone-map predicate pruning                                          *)
(* ------------------------------------------------------------------ *)

(* Could any live cell of this zone compare [op]-true against non-null
   constant [v] under Expr_eval.cmp_values? Numeric cells compare by
   float against numeric constants; everything else falls back to the
   Value.compare total order — hence the two ranges. Conservative by
   construction: [false] is returned only when no cell can match. *)
let zone_cmp_may (op : Sql_ast.binop) z v =
  if z.z_nonnull = 0 then false
  else
    match Value.as_float v with
    | Some f when Float.is_nan f ->
      (* NaN: Stdlib.compare's total order makes NaN = NaN true and
         orders NaN below everything, so be maximally conservative. *)
      true
    | Some f ->
      let num_may =
        z.z_nnum > 0
        &&
        match op with
        | Sql_ast.Eq -> z.z_num_lo <= f && f <= z.z_num_hi
        | Sql_ast.Lt -> z.z_num_lo < f
        | Sql_ast.Leq -> z.z_num_lo <= f
        | Sql_ast.Gt -> z.z_num_hi > f
        | Sql_ast.Geq -> z.z_num_hi >= f
        | _ -> true
      in
      (* NaN cells are excluded from the float range but compare below
         every finite float under Stdlib.compare's total order, so they
         can satisfy < and <= against a finite constant. *)
      let nan_may =
        z.z_has_nan
        &&
        match op with
        | Sql_ast.Lt | Sql_ast.Leq -> true
        | Sql_ast.Eq | Sql_ast.Gt | Sql_ast.Geq -> false
        | _ -> true
      in
      let other = z.z_nonnull - z.z_nnum in
      let other_may =
        other > 0
        &&
        (* non-numeric cell vs numeric constant: Value.compare *)
        match op with
        | Sql_ast.Eq -> Value.compare z.z_lo v <= 0 && Value.compare v z.z_hi <= 0
        | Sql_ast.Lt -> Value.compare z.z_lo v < 0
        | Sql_ast.Leq -> Value.compare z.z_lo v <= 0
        | Sql_ast.Gt -> Value.compare z.z_hi v > 0
        | Sql_ast.Geq -> Value.compare z.z_hi v >= 0
        | _ -> true
      in
      num_may || nan_may || other_may
    | None -> (
      (* non-numeric constant: every comparison is Value.compare *)
      match op with
      | Sql_ast.Eq -> Value.compare z.z_lo v <= 0 && Value.compare v z.z_hi <= 0
      | Sql_ast.Lt -> Value.compare z.z_lo v < 0
      | Sql_ast.Leq -> Value.compare z.z_lo v <= 0
      | Sql_ast.Gt -> Value.compare z.z_hi v > 0
      | Sql_ast.Geq -> Value.compare z.z_hi v >= 0
      | _ -> true)

(** Compile [e] into a conservative per-block test: [false] only when
    no live row of the block can satisfy [e]. Unresolvable columns and
    unhandled expression forms degrade to [true]. *)
let compile_zone_filter t (layout : Expr_eval.layout) (e : Sql_ast.expr) :
    int -> bool =
  if not (has_zones t) then fun _ -> true
  else begin
    let zones_of q n =
      match Expr_eval.resolve layout (q, n) with
      | pos -> Some t.cols.(pos).zones
      | exception Expr_eval.Unknown_column _ -> None
    in
    let rec go (e : Sql_ast.expr) : int -> bool =
      match e with
      | Sql_ast.Binop (Sql_ast.And, a, b) ->
        let fa = go a and fb = go b in
        fun bi -> fa bi && fb bi
      | Sql_ast.Binop (Sql_ast.Or, a, b) ->
        let fa = go a and fb = go b in
        fun bi -> fa bi || fb bi
      | Sql_ast.Binop
          (((Sql_ast.Eq | Sql_ast.Neq | Sql_ast.Lt | Sql_ast.Leq | Sql_ast.Gt
            | Sql_ast.Geq) as op),
           Sql_ast.Col (q, n), Sql_ast.Const v)
        when not (Value.is_null v) -> (
        match zones_of q n with
        | None -> fun _ -> true
        | Some zs ->
          (match op with
           | Sql_ast.Neq ->
             (* != only needs one non-null cell anywhere in range *)
             fun bi -> zs.(bi).z_nonnull > 0
           | _ -> fun bi -> zone_cmp_may op zs.(bi) v))
      | Sql_ast.Binop
          (((Sql_ast.Eq | Sql_ast.Neq | Sql_ast.Lt | Sql_ast.Leq | Sql_ast.Gt
            | Sql_ast.Geq) as op),
           Sql_ast.Const v, Sql_ast.Col (q, n))
        when not (Value.is_null v) ->
        (* flip the comparison so the column is on the left *)
        let flipped =
          match op with
          | Sql_ast.Lt -> Sql_ast.Gt
          | Sql_ast.Leq -> Sql_ast.Geq
          | Sql_ast.Gt -> Sql_ast.Lt
          | Sql_ast.Geq -> Sql_ast.Leq
          | o -> o
        in
        go (Sql_ast.Binop (flipped, Sql_ast.Col (q, n), Sql_ast.Const v))
      | Sql_ast.Is_null (Sql_ast.Col (q, n)) -> (
        match zones_of q n with
        | None -> fun _ -> true
        | Some zs -> fun bi -> zs.(bi).z_nulls > 0)
      | Sql_ast.Is_not_null (Sql_ast.Col (q, n)) -> (
        match zones_of q n with
        | None -> fun _ -> true
        | Some zs -> fun bi -> zs.(bi).z_nonnull > 0)
      | Sql_ast.In_list (Sql_ast.Col (q, n), vs) -> (
        (* IN uses structural membership (Expr_eval builds a Hashtbl
           over the literals), so the total-order range is the right
           necessary condition for every member. *)
        match zones_of q n with
        | None -> fun _ -> true
        | Some zs ->
          let vs = List.filter (fun v -> not (Value.is_null v)) vs in
          fun bi ->
            let z = zs.(bi) in
            z.z_nonnull > 0
            && List.exists
                 (fun v ->
                   Value.compare z.z_lo v <= 0 && Value.compare v z.z_hi <= 0)
                 vs)
      | _ -> fun _ -> true
    in
    go e
  end

(* ------------------------------------------------------------------ *)
(* Equality prefilter extraction                                       *)
(* ------------------------------------------------------------------ *)

(** A top-level [col = const] conjunct of [e] compiled to candidate
    codes: [Some (pos, codes)] lets the scan drive column [pos]
    word-at-a-time through {!iter_eq} (an empty [codes] proves the scan
    empty). [None] when no such conjunct exists or no exact candidate
    set does. Sound because every row satisfying [e] satisfies each of
    its conjuncts, and the caller re-applies the full predicate. *)
let eq_prefilter t (layout : Expr_eval.layout) (e : Sql_ast.expr) :
    (int * int array) option =
  let rec conjuncts e acc =
    match e with
    | Sql_ast.Binop (Sql_ast.And, a, b) -> conjuncts a (conjuncts b acc)
    | e -> e :: acc
  in
  let candidate = function
    | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Col (q, n), Sql_ast.Const v)
    | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Const v, Sql_ast.Col (q, n))
      when not (Value.is_null v) -> (
      match Expr_eval.resolve layout (q, n) with
      | pos -> (
        match eq_codes t pos v with
        | Some codes -> Some (pos, Array.of_list codes)
        | None -> None)
      | exception Expr_eval.Unknown_column _ -> None)
    | _ -> None
  in
  (* Prefer a conjunct that proves emptiness, else the narrowest
     candidate set (fewer codes = cheaper SWAR pass). *)
  List.fold_left
    (fun best conj ->
      match candidate conj with
      | None -> best
      | Some (_, codes) as cand -> (
        match best with
        | Some (_, bcodes) when Array.length bcodes <= Array.length codes ->
          best
        | _ -> cand))
    None (conjuncts e [])

(* ------------------------------------------------------------------ *)
(* Decode-free predicate compilation                                   *)
(* ------------------------------------------------------------------ *)

(** Compile a filter into a test over raw packed codes — no field is
    ever decoded into a boxed {!Value.t}. Supported shapes: And/Or
    trees whose leaves are [col = const] / [col <> const] (constants
    with an exact candidate-code set, {!eq_codes}), ordered
    comparisons [col < const] / [<=] / [>] / [>=] against Int/Real
    constants on Direct columns (code [k] decodes to [Int (k-1)], so
    the comparison runs on the code arithmetic alone), [col IS NULL] /
    [col IS NOT NULL], and [col IN (...)] over non-Real constants.
    Semantics match {!Expr_eval.compile_pred} row for row: its leaf
    comparisons are two-valued (a NULL operand compares false), NULL is
    code 0 and never a member of a candidate set, ordered comparisons
    replicate [cmp_values]' Int/Real coercion (an Int cell against a
    Real constant compares by float), and IN uses the same structural
    equality as the evaluator's hash set (Reals are refused so NaN
    payloads cannot disagree). [None] when any leaf falls outside this
    shape; the caller then filters on decoded rows. *)
let compile_code_pred t (layout : Expr_eval.layout) (e : Sql_ast.expr) :
    (int -> bool) option =
  let col_of q n =
    match Expr_eval.resolve layout (q, n) with
    | pos -> Some t.cols.(pos)
    | exception Expr_eval.Unknown_column _ -> None
  in
  let mem_test codes =
    let arr = Array.of_list codes in
    let n = Array.length arr in
    fun code ->
      let rec mem i = i < n && (Array.unsafe_get arr i = code || mem (i + 1)) in
      mem 0
  in
  let eq_leaf c v =
    match eq_codes_col c v with
    | None -> None
    | Some [] -> Some (fun _ -> false)
    | Some [ k ] -> Some (fun rid -> code_at c rid = k)
    | Some ks ->
      let mem = mem_test ks in
      Some (fun rid -> mem (code_at c rid))
  in
  let neq_leaf c v =
    match eq_codes_col c v with
    | None -> None
    | Some [] -> Some (fun rid -> code_at c rid <> 0)
    | Some ks ->
      let mem = mem_test ks in
      Some
        (fun rid ->
          let code = code_at c rid in
          code <> 0 && not (mem code))
  in
  (* Ordered comparison on a Direct column: every non-null cell is
     [Int (code - 1)], so [cmp_values cell const] is pure code
     arithmetic — int compare against an Int constant, float compare
     (the evaluator's numeric coercion; Stdlib.compare so NaN orders
     identically) against a Real one. Dict columns and non-numeric
     constants fall back to decoded evaluation. *)
  let cmp_ok (op : Sql_ast.binop) c =
    match op with
    | Sql_ast.Lt -> c < 0
    | Sql_ast.Leq -> c <= 0
    | Sql_ast.Gt -> c > 0
    | Sql_ast.Geq -> c >= 0
    | _ -> assert false
  in
  let cmp_leaf c op v =
    if not c.direct then None
    else
      let test =
        match v with
        | Value.Int x -> Some (fun k -> cmp_ok op (Stdlib.compare (k - 1) x))
        | Value.Real f ->
          Some (fun k -> cmp_ok op (Stdlib.compare (float_of_int (k - 1)) f))
        | _ -> None
      in
      Option.map
        (fun t ->
          fun rid ->
            let k = code_at c rid in
            k <> 0 && t k)
        test
  in
  (* [const op col] reads as [col (flip op) const]. *)
  let flip_cmp (op : Sql_ast.binop) =
    match op with
    | Sql_ast.Lt -> Sql_ast.Gt
    | Sql_ast.Leq -> Sql_ast.Geq
    | Sql_ast.Gt -> Sql_ast.Lt
    | Sql_ast.Geq -> Sql_ast.Leq
    | o -> o
  in
  let rec go e =
    match e with
    | Sql_ast.Binop (Sql_ast.And, a, b) -> (
      match (go a, go b) with
      | Some f, Some g -> Some (fun rid -> f rid && g rid)
      | _ -> None)
    | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Case (whens, els), Sql_ast.Const v)
    | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Const v, Sql_ast.Case (whens, els))
      when not (Value.is_null v) ->
      case_leaf whens els v eq_leaf
    | Sql_ast.Binop (Sql_ast.Neq, Sql_ast.Case (whens, els), Sql_ast.Const v)
    | Sql_ast.Binop (Sql_ast.Neq, Sql_ast.Const v, Sql_ast.Case (whens, els))
      when not (Value.is_null v) ->
      case_leaf whens els v neq_leaf
    | Sql_ast.Binop
        (((Sql_ast.Lt | Sql_ast.Leq | Sql_ast.Gt | Sql_ast.Geq) as op),
         Sql_ast.Case (whens, els), Sql_ast.Const v)
      when not (Value.is_null v) ->
      case_leaf whens els v (fun c v -> cmp_leaf c op v)
    | Sql_ast.Binop
        (((Sql_ast.Lt | Sql_ast.Leq | Sql_ast.Gt | Sql_ast.Geq) as op),
         Sql_ast.Const v, Sql_ast.Case (whens, els))
      when not (Value.is_null v) ->
      case_leaf whens els v (fun c v -> cmp_leaf c (flip_cmp op) v)
    | Sql_ast.Binop (Sql_ast.Or, a, b) -> (
      match (go a, go b) with
      | Some f, Some g -> Some (fun rid -> f rid || g rid)
      | _ -> None)
    | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Col (q, n), Sql_ast.Const v)
    | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Const v, Sql_ast.Col (q, n))
      when not (Value.is_null v) ->
      Option.bind (col_of q n) (fun c -> eq_leaf c v)
    | Sql_ast.Binop (Sql_ast.Neq, Sql_ast.Col (q, n), Sql_ast.Const v)
    | Sql_ast.Binop (Sql_ast.Neq, Sql_ast.Const v, Sql_ast.Col (q, n))
      when not (Value.is_null v) ->
      Option.bind (col_of q n) (fun c -> neq_leaf c v)
    | Sql_ast.Binop
        (((Sql_ast.Lt | Sql_ast.Leq | Sql_ast.Gt | Sql_ast.Geq) as op),
         Sql_ast.Col (q, n), Sql_ast.Const v)
      when not (Value.is_null v) ->
      Option.bind (col_of q n) (fun c -> cmp_leaf c op v)
    | Sql_ast.Binop
        (((Sql_ast.Lt | Sql_ast.Leq | Sql_ast.Gt | Sql_ast.Geq) as op),
         Sql_ast.Const v, Sql_ast.Col (q, n))
      when not (Value.is_null v) ->
      Option.bind (col_of q n) (fun c -> cmp_leaf c (flip_cmp op) v)
    | Sql_ast.Is_null (Sql_ast.Col (q, n)) ->
      Option.map (fun c -> fun rid -> code_at c rid = 0) (col_of q n)
    | Sql_ast.Is_not_null (Sql_ast.Col (q, n)) ->
      Option.map (fun c -> fun rid -> code_at c rid <> 0) (col_of q n)
    | Sql_ast.In_list (Sql_ast.Col (q, n), vs)
      when vs <> []
           && List.for_all
                (function
                  | Value.Null | Value.Real _ -> false
                  | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Lid _ ->
                    true)
                vs -> (
      match col_of q n with
      | None -> None
      | Some c ->
        let codes =
          List.sort_uniq compare
            (List.concat_map (fun v -> structural_codes c v []) vs)
        in
        (match codes with
         | [] -> Some (fun _ -> false)
         | [ k ] -> Some (fun rid -> code_at c rid = k)
         | ks ->
           let mem = mem_test ks in
           Some (fun rid -> mem (code_at c rid))))
    | _ -> None
  (* [CASE WHEN c1 THEN col1 WHEN c2 THEN col2 ... END = const] (the
     shape DB2RDF translation emits for star predicates over hashed
     pred/val column pairs, both operand orders, likewise [<>]): the
     evaluator takes the first arm whose condition is T_true and
     compares its column two-valued, yielding false when no arm fires
     (the CASE is NULL). On codes: the arm conditions compile through
     [go], the comparison through the same [eq_leaf]/[neq_leaf] used
     for bare columns. Arms whose result is not a plain column, or an
     ELSE other than NULL, fall back to decoded evaluation. *)
  and case_leaf whens els v leaf =
    match els with
    | Some (Sql_ast.Const Value.Null) | None -> (
      let rec arms acc = function
        | [] -> Some (List.rev acc)
        | (cond, Sql_ast.Col (q, n)) :: rest -> (
          match go cond with
          | None -> None
          | Some cp -> (
            match Option.bind (col_of q n) (fun c -> leaf c v) with
            | None -> None
            | Some rp -> arms ((cp, rp) :: acc) rest))
        | _ -> None
      in
      match arms [] whens with
      | None -> None
      | Some ps ->
        Some
          (fun rid ->
            let rec first = function
              | [] -> false
              | (cp, rp) :: rest -> if cp rid then rp rid else first rest
            in
            first ps))
    | Some _ -> None
  in
  go e

(* ------------------------------------------------------------------ *)
(* Block-bitmap predicate evaluation                                   *)
(* ------------------------------------------------------------------ *)

(* Bit [rid - blo] of a block bitmap lives in word [(rid - blo) / 63]
   at position [(rid - blo) mod 63]; an OCaml int carries 63 usable
   bits, and [-1] is the all-set word. *)
let bm_bits = 63

type bnode =
  | B_in of col * int array  (* row's field code is one of the codes *)
  | B_notin of col * int array  (* row's field code is none of them *)
  | B_and of bnode * bnode
  | B_or of bnode * bnode

(** Compile the same filter shapes as {!compile_code_pred} (minus the
    CASE leaf) into a block-at-a-time evaluator: every leaf SWAR-scans
    its column's words over the block once ({!iter_eq_col}), setting
    one bit per matching row, and And/Or combine whole bitmaps with
    [land]/[lor]. For the generated star filters — conjunctions of
    OR-of-equalities over single-word-per-block packed columns — this
    replaces per-row predicate dispatch with a few word scans. The
    outer call validates the filter and fixes the candidate code sets;
    each application of the returned thunk builds an evaluator with
    private scratch bitmaps, so parallel morsels must instantiate
    their own. [eval blo bhi] (with [bhi - blo <= block_rows]) returns
    a bitmap whose bit [rid - blo] is set iff row [rid] satisfies the
    filter; row liveness is not consulted. *)
let compile_block_pred t (layout : Expr_eval.layout) (e : Sql_ast.expr) :
    (unit -> int -> int -> int array) option =
  let col_of q n =
    match Expr_eval.resolve layout (q, n) with
    | pos -> Some t.cols.(pos)
    | exception Expr_eval.Unknown_column _ -> None
  in
  let in_leaf q n v =
    match col_of q n with
    | None -> None
    | Some c ->
      Option.map (fun ks -> B_in (c, Array.of_list ks)) (eq_codes_col c v)
  in
  let notin_leaf q n v =
    match col_of q n with
    | None -> None
    | Some c ->
      Option.map
        (fun ks -> B_notin (c, Array.of_list (0 :: ks)))
        (eq_codes_col c v)
  in
  let rec plan e =
    match e with
    | Sql_ast.Binop (Sql_ast.And, a, b) -> (
      match (plan a, plan b) with
      | Some x, Some y -> Some (B_and (x, y))
      | _ -> None)
    | Sql_ast.Binop (Sql_ast.Or, a, b) -> (
      match (plan a, plan b) with
      | Some x, Some y -> Some (B_or (x, y))
      | _ -> None)
    | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Col (q, n), Sql_ast.Const v)
    | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Const v, Sql_ast.Col (q, n))
      when not (Value.is_null v) ->
      in_leaf q n v
    | Sql_ast.Binop (Sql_ast.Neq, Sql_ast.Col (q, n), Sql_ast.Const v)
    | Sql_ast.Binop (Sql_ast.Neq, Sql_ast.Const v, Sql_ast.Col (q, n))
      when not (Value.is_null v) ->
      notin_leaf q n v
    | Sql_ast.Is_null (Sql_ast.Col (q, n)) ->
      Option.map (fun c -> B_in (c, [| 0 |])) (col_of q n)
    | Sql_ast.Is_not_null (Sql_ast.Col (q, n)) ->
      Option.map (fun c -> B_notin (c, [| 0 |])) (col_of q n)
    | Sql_ast.In_list (Sql_ast.Col (q, n), vs)
      when vs <> []
           && List.for_all
                (function
                  | Value.Null | Value.Real _ -> false
                  | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Lid _ ->
                    true)
                vs ->
      Option.map
        (fun c ->
          B_in
            ( c,
              Array.of_list
                (List.sort_uniq compare
                   (List.concat_map (fun v -> structural_codes c v []) vs)) ))
        (col_of q n)
    | _ -> None
  in
  match plan e with
  | None -> None
  | Some tree ->
    let nw = (block_rows + bm_bits - 1) / bm_bits in
    Some
      (fun () ->
        let[@inline] set dst i =
          dst.(i / bm_bits) <- dst.(i / bm_bits) lor (1 lsl (i mod bm_bits))
        in
        let[@inline] clear dst i =
          dst.(i / bm_bits) <- dst.(i / bm_bits) land lnot (1 lsl (i mod bm_bits))
        in
        let rec inst = function
          | B_in (c, ks) ->
            fun dst blo bhi ->
              Array.fill dst 0 nw 0;
              iter_eq_col c ks blo bhi (fun rid -> set dst (rid - blo))
          | B_notin (c, ks) ->
            fun dst blo bhi ->
              (* All rows of the block, minus the matching codes. *)
              let n = bhi - blo in
              let full = n / bm_bits in
              Array.fill dst 0 nw 0;
              Array.fill dst 0 full (-1);
              let rem = n - (full * bm_bits) in
              if rem > 0 then dst.(full) <- (1 lsl rem) - 1;
              iter_eq_col c ks blo bhi (fun rid -> clear dst (rid - blo))
          | B_and (a, b) ->
            let fa = inst a and fb = inst b in
            let tmp = Array.make nw 0 in
            fun dst blo bhi ->
              fa dst blo bhi;
              let any = ref false in
              for i = 0 to nw - 1 do
                if dst.(i) <> 0 then any := true
              done;
              if !any then begin
                fb tmp blo bhi;
                for i = 0 to nw - 1 do
                  dst.(i) <- dst.(i) land tmp.(i)
                done
              end
          | B_or (a, b) ->
            let fa = inst a and fb = inst b in
            let tmp = Array.make nw 0 in
            fun dst blo bhi ->
              fa dst blo bhi;
              fb tmp blo bhi;
              for i = 0 to nw - 1 do
                dst.(i) <- dst.(i) lor tmp.(i)
              done
        in
        let root = inst tree in
        let dst = Array.make nw 0 in
        fun blo bhi ->
          root dst blo bhi;
          dst)
