(** ExtVP-style semi-join reductions (S2RDF's extended vertical
    partitioning, transplanted onto the entity-oriented DPH layout).

    A reduction is keyed by a predicate pair and a correlation kind —
    SS (subject-subject), SO (subject of [p1] = object of [p2]), OS
    (object of [p1] = subject of [p2]) — and holds the subset of DPH
    rows that can possibly contribute to a join edge with that
    signature, under the {e same schema} as DPH, so every star template
    the SQL generator emits runs against a reduction unchanged.

    The registry below owns lifecycle, not contents: the storage layer
    installs a [builder] (which knows the DPH layout), a [stamp]
    function (the catalog's data/encoding/delta versions) and a cheap
    statistics [estimator]. Reductions are built lazily on first
    resolve, kept only when their measured selectivity is below
    [threshold] (S2RDF's ScaleUB, default 0.25), LRU-evicted beyond a
    global byte [budget], and dropped the moment the stamp moves —
    inserts and deletes invalidate rather than corrupt. Builders are
    deterministic at a fixed stamp, so an evicted-and-rebuilt reduction
    is bit-identical and downstream caches keyed by table contents stay
    valid; a {e stale} drop, by contrast, fires [on_invalidate] so the
    shared scan cache cannot serve rows of the previous generation
    under a recycled table name. *)

type corr = SS | SO | OS

type key = { p1 : int; p2 : int; corr : corr }

let corr_to_string = function SS -> "ss" | SO -> "so" | OS -> "os"

let corr_of_string = function
  | "ss" -> Some SS
  | "so" -> Some SO
  | "os" -> Some OS
  | _ -> None

(* Reduction table names live outside the catalog's namespace: the
   dollar cannot appear in a SQL identifier the parser accepts, so no
   user table can collide. *)
let name_prefix = "extvp$"

let is_extvp_name n =
  String.length n > String.length name_prefix
  && String.sub n 0 (String.length name_prefix) = name_prefix

let name_of_key k =
  Printf.sprintf "%s%s$%d$%d" name_prefix (corr_to_string k.corr) k.p1 k.p2

let key_of_name n =
  if not (is_extvp_name n) then None
  else
    match String.split_on_char '$' n with
    | [ _; c; p1; p2 ] ->
      (match corr_of_string c, int_of_string_opt p1, int_of_string_opt p2 with
       | Some corr, Some p1, Some p2 when p1 >= 0 && p2 >= 0 ->
         Some { p1; p2; corr }
       | _ -> None)
    | _ -> None

type entry = {
  e_table : Table.t;
  e_stamp : int * int * int;
  e_bytes : int;
  e_sel : float;
  mutable e_last_use : int;
}

(** Lifecycle counters, surfaced by [rdfstore stats] and the bench
    harness. [bytes] is the {e currently} cached total. *)
type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable builds : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable rejections : int;
  mutable build_s : float;
  mutable bytes : int;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  rejected : (string, (int * int * int) * float) Hashtbl.t;
      (* measured-too-coarse reductions, memoized per stamp so the
         planner stops asking until the data changes *)
  mutable last_rejected : (string * (int * int * int) * Table.t) option;
      (* one-slot scratch: a cached statement may keep referencing a
         reduction whose measured selectivity failed the threshold;
         serving the last such build prevents a rebuild per execution *)
  mutable threshold : float;
  mutable budget_bytes : int;
  mutable force : bool;
      (* differential-testing mode: always advisable, always retained *)
  mutable builder : (key -> Table.t * int * int) option;
      (* key -> (reduction, source rows, kept rows) *)
  mutable stamp_fn : (unit -> int * int * int) option;
  mutable estimator : (key -> float) option;
  mutable on_invalidate : unit -> unit;
  mutable tick : int;
  c : counters;
}

let default_threshold = 0.25
let default_budget_bytes = 64 * 1024 * 1024

let create () =
  {
    entries = Hashtbl.create 16;
    rejected = Hashtbl.create 16;
    last_rejected = None;
    threshold = default_threshold;
    budget_bytes = default_budget_bytes;
    force = false;
    builder = None;
    stamp_fn = None;
    estimator = None;
    on_invalidate = (fun () -> ());
    tick = 0;
    c =
      {
        hits = 0;
        misses = 0;
        builds = 0;
        evictions = 0;
        invalidations = 0;
        rejections = 0;
        build_s = 0.0;
        bytes = 0;
      };
  }

let set_hooks t ~builder ~stamp ~estimator =
  t.builder <- Some builder;
  t.stamp_fn <- Some stamp;
  t.estimator <- Some estimator

let set_on_invalidate t f = t.on_invalidate <- f
let set_force t b = t.force <- b
let force t = t.force
let set_threshold t x = t.threshold <- x
let threshold t = t.threshold
let set_budget_bytes t n = t.budget_bytes <- max 0 n
let budget_bytes t = t.budget_bytes
let counters t = t.c
let cached_count t = Hashtbl.length t.entries

(** Names and measured selectivities of the currently cached
    reductions, sorted by name. *)
let cached t =
  Hashtbl.fold (fun n e acc -> (n, e.e_sel, e.e_bytes) :: acc) t.entries []
  |> List.sort compare

let clear t =
  Hashtbl.reset t.entries;
  Hashtbl.reset t.rejected;
  t.last_rejected <- None;
  t.c.bytes <- 0

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* Evict least-recently-used entries while over budget. The
   just-inserted entry (maximal tick) is only ever chosen last, and a
   lone over-budget entry is kept — evicting it would thrash a rebuild
   per statement. Rebuilds at an unchanged stamp are deterministic
   copies, so eviction needs no cache invalidation. *)
let evict_to_budget t =
  while
    t.c.bytes > t.budget_bytes && Hashtbl.length t.entries > 1
  do
    let victim =
      Hashtbl.fold
        (fun n e acc ->
          match acc with
          | Some (_, b) when b.e_last_use <= e.e_last_use -> acc
          | _ -> Some (n, e))
        t.entries None
    in
    match victim with
    | None -> ()
    | Some (n, e) ->
      Hashtbl.remove t.entries n;
      t.c.bytes <- t.c.bytes - e.e_bytes;
      t.c.evictions <- t.c.evictions + 1
  done

let drop_stale t name e =
  Hashtbl.remove t.entries name;
  t.c.bytes <- t.c.bytes - e.e_bytes;
  t.c.invalidations <- t.c.invalidations + 1;
  t.on_invalidate ()

let build t key name stamp builder =
  t.c.misses <- t.c.misses + 1;
  let t0 = Unix.gettimeofday () in
  let table, total, kept = builder key in
  t.c.builds <- t.c.builds + 1;
  t.c.build_s <- t.c.build_s +. (Unix.gettimeofday () -. t0);
  let sel = float_of_int kept /. float_of_int (max 1 total) in
  if t.force || sel < t.threshold then begin
    let bytes = Table.storage_size table in
    Hashtbl.replace t.entries name
      { e_table = table; e_stamp = stamp; e_bytes = bytes; e_sel = sel;
        e_last_use = next_tick t };
    t.c.bytes <- t.c.bytes + bytes;
    evict_to_budget t
  end
  else begin
    t.c.rejections <- t.c.rejections + 1;
    Hashtbl.replace t.rejected name (stamp, sel);
    t.last_rejected <- Some (name, stamp, table)
  end;
  table

(** Resolve a reduction table by name, building it on demand. [None]
    when the name does not parse or no builder is installed — the
    caller (catalog lookup) then reports an unknown table. *)
let resolve t name : Table.t option =
  match key_of_name name with
  | None -> None
  | Some key ->
    (match t.builder, t.stamp_fn with
     | Some builder, Some stamp_fn ->
       let stamp = stamp_fn () in
       (match Hashtbl.find_opt t.entries name with
        | Some e when e.e_stamp = stamp ->
          t.c.hits <- t.c.hits + 1;
          e.e_last_use <- next_tick t;
          Some e.e_table
        | Some e ->
          drop_stale t name e;
          Some (build t key name stamp builder)
        | None ->
          (match t.last_rejected with
           | Some (n, st, table) when n = name && st = stamp ->
             t.c.hits <- t.c.hits + 1;
             Some table
           | _ -> Some (build t key name stamp builder)))
     | _ -> None)

(** Should the planner substitute this reduction? Yes when it is
    already cached fresh, or when the statistics estimator predicts a
    selectivity under the threshold; no when a fresh build already
    measured over it. Never triggers a build. *)
let advisable t key : bool =
  match t.builder, t.stamp_fn with
  | Some _, Some stamp_fn ->
    t.force
    ||
    let name = name_of_key key in
    let stamp = stamp_fn () in
    (match Hashtbl.find_opt t.entries name with
     | Some e when e.e_stamp = stamp -> true
     | _ ->
       (match Hashtbl.find_opt t.rejected name with
        | Some (st, _) when st = stamp -> false
        | _ ->
          (match t.estimator with
           | Some est -> est key < t.threshold
           | None -> false)))
  | _ -> false

(** Best available selectivity estimate: measured when a fresh build
    exists (cached or rejected), the statistics estimate otherwise. *)
let estimate t key : float =
  match t.stamp_fn with
  | None -> 1.0
  | Some stamp_fn ->
    let name = name_of_key key in
    let stamp = stamp_fn () in
    (match Hashtbl.find_opt t.entries name with
     | Some e when e.e_stamp = stamp -> e.e_sel
     | _ ->
       (match Hashtbl.find_opt t.rejected name with
        | Some (st, sel) when st = stamp -> sel
        | _ ->
          (match t.estimator with Some est -> est key | None -> 1.0)))
