(** SPARQL printer. [Parser.parse (Pp.to_string q)] round-trips modulo
    group flattening (property-tested with a normalizing comparison). *)

open Ast

let term_pat_to_string = function
  | Var v -> "?" ^ v
  | Term t -> Rdf.Term.to_string t

let cmp_to_string = function
  | Ceq -> "=" | Cneq -> "!=" | Clt -> "<" | Cleq -> "<=" | Cgt -> ">"
  | Cgeq -> ">="

let arith_to_string = function
  | Aadd -> "+" | Asub -> "-" | Amul -> "*" | Adiv -> "/"

let rec expr_to_buf buf = function
  | E_var v ->
    Buffer.add_char buf '?';
    Buffer.add_string buf v
  | E_const t -> Buffer.add_string buf (Rdf.Term.to_string t)
  | E_cmp (c, a, b) ->
    Buffer.add_char buf '(';
    expr_to_buf buf a;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (cmp_to_string c);
    Buffer.add_char buf ' ';
    expr_to_buf buf b;
    Buffer.add_char buf ')'
  | E_and (a, b) ->
    Buffer.add_char buf '(';
    expr_to_buf buf a;
    Buffer.add_string buf " && ";
    expr_to_buf buf b;
    Buffer.add_char buf ')'
  | E_or (a, b) ->
    Buffer.add_char buf '(';
    expr_to_buf buf a;
    Buffer.add_string buf " || ";
    expr_to_buf buf b;
    Buffer.add_char buf ')'
  | E_not e ->
    Buffer.add_string buf "(!";
    expr_to_buf buf e;
    Buffer.add_char buf ')'
  | E_bound v ->
    Buffer.add_string buf "BOUND(?";
    Buffer.add_string buf v;
    Buffer.add_char buf ')'
  | E_regex (e, pat) ->
    Buffer.add_string buf "REGEX(";
    expr_to_buf buf e;
    Buffer.add_string buf ", \"";
    Buffer.add_string buf pat;
    Buffer.add_string buf "\")"
  | E_arith (op, a, b) ->
    Buffer.add_char buf '(';
    expr_to_buf buf a;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (arith_to_string op);
    Buffer.add_char buf ' ';
    expr_to_buf buf b;
    Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_to_buf buf e;
  Buffer.contents buf

let triple_pat_to_string { tp_s; tp_p; tp_o } =
  Printf.sprintf "%s %s %s ."
    (term_pat_to_string tp_s)
    (term_pat_to_string tp_p)
    (term_pat_to_string tp_o)

let rec pattern_to_buf buf indent = function
  | Bgp tps ->
    List.iter
      (fun tp ->
        Buffer.add_string buf indent;
        Buffer.add_string buf (triple_pat_to_string tp);
        Buffer.add_char buf '\n')
      tps
  | Group ps ->
    Buffer.add_string buf indent;
    Buffer.add_string buf "{\n";
    List.iter (fun p -> pattern_to_buf buf (indent ^ "  ") p) ps;
    Buffer.add_string buf indent;
    Buffer.add_string buf "}\n"
  | Union parts ->
    List.iteri
      (fun i p ->
        if i > 0 then begin
          Buffer.add_string buf indent;
          Buffer.add_string buf "UNION\n"
        end;
        Buffer.add_string buf indent;
        Buffer.add_string buf "{\n";
        pattern_to_buf buf (indent ^ "  ") p;
        Buffer.add_string buf indent;
        Buffer.add_string buf "}\n")
      parts
  | Optional p ->
    Buffer.add_string buf indent;
    Buffer.add_string buf "OPTIONAL {\n";
    pattern_to_buf buf (indent ^ "  ") p;
    Buffer.add_string buf indent;
    Buffer.add_string buf "}\n"
  | Filter e ->
    Buffer.add_string buf indent;
    Buffer.add_string buf "FILTER ";
    Buffer.add_string buf (expr_to_string e);
    Buffer.add_char buf '\n'

let agg_fun_to_string = function
  | Ag_count -> "COUNT" | Ag_sum -> "SUM" | Ag_avg -> "AVG"
  | Ag_min -> "MIN" | Ag_max -> "MAX"

let to_string (q : query) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "SELECT ";
  if q.distinct then Buffer.add_string buf "DISTINCT ";
  if q.reduced then Buffer.add_string buf "REDUCED ";
  (match q.projection, q.aggregates with
   | Select_star, [] -> Buffer.add_string buf "*"
   | Select_star, _ -> ()
   | Select_vars vs, _ ->
     Buffer.add_string buf (String.concat " " (List.map (fun v -> "?" ^ v) vs)));
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf " (%s(%s%s) AS ?%s)"
           (agg_fun_to_string a.agg_fn)
           (if a.agg_distinct then "DISTINCT " else "")
           (match a.agg_arg with Some v -> "?" ^ v | None -> "*")
           a.agg_alias))
    q.aggregates;
  Buffer.add_string buf "\nWHERE {\n";
  pattern_to_buf buf "  " q.where;
  Buffer.add_string buf "}\n";
  (match q.group_by with
   | [] -> ()
   | vs ->
     Buffer.add_string buf
       ("GROUP BY " ^ String.concat " " (List.map (fun v -> "?" ^ v) vs) ^ "\n"));
  (match q.order_by with
   | [] -> ()
   | conds ->
     Buffer.add_string buf "ORDER BY ";
     List.iter
       (fun { ord_expr; ord_asc } ->
         if ord_asc then begin
           match ord_expr with
           | E_var v ->
             Buffer.add_string buf ("?" ^ v);
             Buffer.add_char buf ' '
           | e ->
             Buffer.add_string buf "ASC(";
             Buffer.add_string buf (expr_to_string e);
             Buffer.add_string buf ") "
         end
         else begin
           Buffer.add_string buf "DESC(";
           Buffer.add_string buf (expr_to_string ord_expr);
           Buffer.add_string buf ") "
         end)
       conds;
     Buffer.add_char buf '\n');
  (match q.limit with
   | Some n -> Buffer.add_string buf (Printf.sprintf "LIMIT %d\n" n)
   | None -> ());
  (match q.offset with
   | Some n -> Buffer.add_string buf (Printf.sprintf "OFFSET %d\n" n)
   | None -> ());
  Buffer.contents buf

let update_to_string (u : update) =
  let buf = Buffer.create 256 in
  let block header lines =
    Buffer.add_string buf header;
    Buffer.add_string buf " {\n";
    List.iter
      (fun l ->
        Buffer.add_string buf "  ";
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      lines;
    Buffer.add_string buf "}\n"
  in
  (match u with
   | Insert_data ts ->
     block "INSERT DATA" (List.map Rdf.Triple.to_string ts)
   | Delete_data ts ->
     block "DELETE DATA" (List.map Rdf.Triple.to_string ts)
   | Delete_where tps ->
     block "DELETE WHERE" (List.map triple_pat_to_string tps));
  Buffer.contents buf

let statement_to_string = function
  | S_query q -> to_string q
  | S_update u -> update_to_string u

(** A whole script, statements separated by [;] lines — the inverse of
    {!Parser.parse_script}. *)
let script_to_string (stmts : statement list) =
  String.concat ";\n" (List.map statement_to_string stmts)
