(** End-to-end tests: the full DB2RDF pipeline (and every other store)
    against the reference evaluator, on hand-written queries and on
    random graphs × random queries. *)

open Db2rdf

let fig1_queries =
  [ "fig6", Helpers.fig6_query_src;
    "star", "SELECT ?s WHERE { ?s <industry> \"Software\" . ?s <employees> ?e . ?s <HQ> ?h }";
    "multival", "SELECT ?i WHERE { <IBM> <industry> ?i }";
    "varpred", "SELECT ?p ?o WHERE { <Android> ?p ?o }";
    "varpred-rev", "SELECT ?s ?p WHERE { ?s ?p <Google> }";
    "filter-num", "SELECT ?s ?b WHERE { ?s <born> ?b FILTER (?b > 1900) }";
    "filter-and", "SELECT ?s WHERE { ?s <born> ?b . ?s <founder> ?c FILTER (?b > 1800 && ?b < 1900) }";
    "optional", "SELECT ?s ?d WHERE { ?s <founder> ?f OPTIONAL { ?s <died> ?d } }";
    "optional-nested", "SELECT ?s ?d ?h WHERE { ?s <founder> ?f OPTIONAL { ?f <HQ> ?h OPTIONAL { ?s <died> ?d } } }";
    "union3", "SELECT ?x WHERE { { ?x <born> ?v } UNION { ?x <industry> ?v } UNION { ?x <kernel> ?v } }";
    "rev-star", "SELECT ?x WHERE { ?x <founder> <IBM> . ?x <died> ?d }";
    "const-subj-obj", "SELECT ?x WHERE { <LarryPage> <founder> ?x . <LarryPage> <board> ?x }";
    "same-var-twice", "SELECT ?x ?y WHERE { ?x <founder> ?y . ?x <board> ?y }";
    "distinct", "SELECT DISTINCT ?i WHERE { ?c <industry> ?i }";
    "orderby", "SELECT ?s ?b WHERE { ?s <born> ?b } ORDER BY ?b";
    "bound-neg", "SELECT ?s WHERE { ?s <founder> ?f OPTIONAL { ?s <home> ?h } FILTER (!BOUND(?h)) }";
    "regex", "SELECT ?s WHERE { ?s <HQ> ?h FILTER REGEX(?h, \"View\") }";
    "empty-const", "SELECT ?x WHERE { ?x <founder> <Nonexistent> }";
    "union-optional", "SELECT ?x ?e WHERE { { ?x <founder> ?y } UNION { ?x <developer> ?y } OPTIONAL { ?y <employees> ?e } }" ]

let test_fig1_all_stores () =
  let triples = Helpers.fig1_triples () in
  let g = Helpers.oracle_of triples in
  let stores = Helpers.all_stores triples in
  List.iter
    (fun (name, src) ->
      List.iter (fun store -> Helpers.check_store_vs_oracle ~msg:name g store src) stores)
    fig1_queries

let test_engine_options_matrix () =
  (* All four on/off combinations of {optimize, merge} agree. *)
  let triples = Helpers.fig1_triples () in
  let g = Helpers.oracle_of triples in
  List.iter
    (fun (optimize, merge, late_fuse) ->
      let options =
        { Engine.default_options with optimize; merge; late_fuse }
      in
      let e = Engine.create ~options ~layout:(Layout.make ~dph_cols:6 ~rph_cols:6) () in
      Engine.load e triples;
      let name =
        Printf.sprintf "opt=%b merge=%b fuse=%b" optimize merge late_fuse
      in
      List.iter
        (fun (qname, src) ->
          Helpers.check_store_vs_oracle
            ~msg:(name ^ " " ^ qname)
            g (Engine.to_store ~name e) src)
        fig1_queries)
    [ (true, true, true); (true, false, true); (false, true, true);
      (false, false, false); (true, true, false) ]

let test_explain_runs () =
  let e = Engine.create () in
  Engine.load e (Helpers.fig1_triples ());
  let out = Engine.explain e (Sparql.Parser.parse Helpers.fig6_query_src) in
  List.iter
    (fun marker ->
      Alcotest.(check bool) ("explain contains " ^ marker) true
        (Helpers.contains out marker))
    [ "optimal flow"; "execution tree"; "SQL"; "WITH"; "physical plan" ]

let test_incremental_insert () =
  let e = Engine.create () in
  let q = Sparql.Parser.parse "SELECT ?s WHERE { ?s <p> <o> }" in
  Alcotest.(check int) "empty" 0 (List.length (Engine.query e q).Sparql.Ref_eval.rows);
  Engine.insert e (Rdf.Triple.spo "s1" "p" (Rdf.Term.iri "o"));
  Alcotest.(check int) "one" 1 (List.length (Engine.query e q).Sparql.Ref_eval.rows);
  Engine.insert e (Rdf.Triple.spo "s2" "p" (Rdf.Term.iri "o"));
  Alcotest.(check int) "two" 2 (List.length (Engine.query e q).Sparql.Ref_eval.rows)

let test_timeout_classified () =
  let e = Engine.create () in
  let triples = Workloads.Sp2b.generate ~scale:4000 in
  Engine.load e triples;
  let q = Sparql.Parser.parse (List.assoc "SQ4" Workloads.Sp2b.queries) in
  match Store.run ~timeout:0.02 (Engine.to_store e) q with
  | Store.Timed_out, _ -> ()
  | Store.Complete _, _ ->
    (* tiny datasets may finish; acceptable, but at least it ran *)
    ()
  | outcome, _ ->
    Alcotest.fail ("unexpected outcome: " ^ Store.outcome_to_string outcome)

(* ------------------------------------------------------------------ *)
(* Random graph × random query property                                *)
(* ------------------------------------------------------------------ *)

(* Vocabulary kept small so patterns join frequently. *)
let gen_graph_and_query : (Rdf.Triple.t list * string) QCheck.Gen.t =
  let open QCheck.Gen in
  let term_s i = Printf.sprintf "<s%d>" i in
  let preds = [ "p"; "q"; "r"; "t" ] in
  let gen_triples =
    list_size (int_range 5 120)
      (map3
         (fun s p o -> Rdf.Triple.spo (Printf.sprintf "s%d" s) p (Rdf.Term.iri (Printf.sprintf "s%d" o)))
         (int_range 0 12) (oneofl preds) (int_range 0 12))
  in
  let vars = [ "a"; "b"; "c"; "d" ] in
  let gen_pos = oneof [ map (fun v -> "?" ^ v) (oneofl vars); map term_s (int_range 0 12) ] in
  let gen_tp =
    map3
      (fun s p o -> Printf.sprintf "%s <%s> %s ." s p o)
      gen_pos (oneofl preds) gen_pos
  in
  let gen_bgp = map (String.concat " ") (list_size (int_range 1 3) gen_tp) in
  (* Property-path triples: sequences, alternatives, inverses. *)
  let gen_path_tp =
    let* s = gen_pos in
    let* o = gen_pos in
    let* p1 = oneofl preds in
    let* p2 = oneofl preds in
    let* shape = int_range 0 2 in
    return
      (match shape with
       | 0 -> Printf.sprintf "%s <%s>/<%s> %s ." s p1 p2 o
       | 1 -> Printf.sprintf "%s <%s>|<%s> %s ." s p1 p2 o
       | _ -> Printf.sprintf "%s ^<%s> %s ." s p1 o)
  in
  let gen_pattern =
    let* shape = int_range 0 6 in
    match shape with
    | 0 | 1 -> gen_bgp
    | 2 ->
      map2 (fun a b -> Printf.sprintf "{ %s } UNION { %s }" a b) gen_bgp gen_bgp
    | 3 -> map2 (fun a b -> Printf.sprintf "%s OPTIONAL { %s }" a b) gen_bgp gen_bgp
    | 4 ->
      map2
        (fun a v -> Printf.sprintf "%s FILTER (BOUND(?%s))" a v)
        gen_bgp (oneofl vars)
    | 5 -> map2 (fun a p -> a ^ " " ^ p) gen_bgp gen_path_tp
    | _ ->
      map3
        (fun a b c -> Printf.sprintf "{ %s } UNION { %s } OPTIONAL { %s }" a b c)
        gen_bgp gen_bgp gen_bgp
  in
  let* triples = gen_triples in
  let* pattern = gen_pattern in
  (* Occasionally wrap in an aggregate projection. *)
  let* agg = int_range 0 4 in
  let src =
    match agg with
    | 0 ->
      Printf.sprintf "SELECT ?a (COUNT(?b) AS ?n) WHERE { %s } GROUP BY ?a"
        pattern
    | 1 -> Printf.sprintf "SELECT (COUNT(*) AS ?n) WHERE { %s }" pattern
    | _ -> Printf.sprintf "SELECT * WHERE { %s }" pattern
  in
  return (triples, src)

let store_equals_oracle_prop (make_store : Rdf.Triple.t list -> Store.t) =
  fun (triples, src) ->
    let q = Sparql.Parser.parse src in
    let g = Helpers.oracle_of triples in
    let oracle = Sparql.Ref_eval.eval g q in
    let store = make_store triples in
    match store.Store.query q with
    | got -> Helpers.results_equivalent q oracle got
    | exception Filter_sql.Unsupported _ -> true (* declared unsupported *)

let arb_graph_query =
  QCheck.make gen_graph_and_query ~print:(fun (triples, src) ->
      src ^ "\n--- data ---\n" ^ Rdf.Ntriples.to_string triples)

let prop_db2rdf_hash =
  QCheck.Test.make ~name:"DB2RDF(hash) ≡ oracle on random graph×query" ~count:250
    arb_graph_query
    (store_equals_oracle_prop (fun triples ->
         let e = Engine.create ~layout:(Layout.make ~dph_cols:3 ~rph_cols:3) () in
         Engine.load e triples;
         Engine.to_store e))

let prop_db2rdf_colored =
  QCheck.Test.make ~name:"DB2RDF(colored) ≡ oracle on random graph×query"
    ~count:150 arb_graph_query
    (store_equals_oracle_prop (fun triples ->
         let e, _, _ =
           Engine.create_colored ~layout:(Layout.make ~dph_cols:4 ~rph_cols:4) triples
         in
         Engine.to_store e))

let prop_db2rdf_unoptimized =
  QCheck.Test.make ~name:"DB2RDF(naive flow) ≡ oracle on random graph×query"
    ~count:150 arb_graph_query
    (store_equals_oracle_prop (fun triples ->
         let options =
           { Engine.default_options with
             optimize = false; merge = false; late_fuse = false }
         in
         let e = Engine.create ~options ~layout:(Layout.make ~dph_cols:3 ~rph_cols:3) () in
         Engine.load e triples;
         Engine.to_store e))

let prop_triple_store =
  QCheck.Test.make ~name:"TripleStore ≡ oracle on random graph×query" ~count:200
    arb_graph_query
    (store_equals_oracle_prop (fun triples ->
         let ts = Triple_store.create () in
         Triple_store.load ts triples;
         Triple_store.to_store ts))

let prop_vertical_store =
  QCheck.Test.make ~name:"VertStore ≡ oracle on random graph×query" ~count:200
    arb_graph_query
    (store_equals_oracle_prop (fun triples ->
         let vs = Vertical_store.create () in
         Vertical_store.load vs triples;
         Vertical_store.to_store vs))

let suite =
  [ Alcotest.test_case "fig1 queries × all stores" `Quick test_fig1_all_stores;
    Alcotest.test_case "engine option matrix" `Quick test_engine_options_matrix;
    Alcotest.test_case "explain" `Quick test_explain_runs;
    Alcotest.test_case "incremental insert" `Quick test_incremental_insert;
    Alcotest.test_case "timeout classification" `Quick test_timeout_classified;
    QCheck_alcotest.to_alcotest prop_db2rdf_hash;
    QCheck_alcotest.to_alcotest prop_db2rdf_colored;
    QCheck_alcotest.to_alcotest prop_db2rdf_unoptimized;
    QCheck_alcotest.to_alcotest prop_triple_store;
    QCheck_alcotest.to_alcotest prop_vertical_store ]
