lib/rdf/ntriples.ml: Buffer Fun List Option Printf String Term Triple
