(** E18 — SPARQL UPDATE throughput and snapshot reads over a mixed
    read/write workload.

    Two engines are built over the same generated dataset — one boxed,
    one compressed — and driven through an identical deterministic
    update stream: INSERT DATA statements growing the dictionary and
    claiming fresh predicate slots, DELETE DATA statements retiring
    rows (multi-valued cells included), and DELETE WHERE statements
    instantiated through the engine's own query pipeline. On the
    compressed engine every statement lands in the frozen tables'
    boxed delta side (delta-main storage): inserts append, deletes
    tombstone, and the packed main is never re-encoded per statement —
    so the packed-vs-boxed write amplification is measured rather than
    assumed. After the first stream the pending delta is folded back
    with a timed {!Db2rdf.Engine.merge}, and a second stream is timed
    against the freshly merged store, giving per-statement cost both
    pre- and post-merge.

    A reference {!Rdf.Graph} replays both streams through
    {!Sparql.Ref_eval.apply_update}; both engines' final contents are
    asserted multiset-equal to it (and to each other) before anything
    is reported. A probe query is timed after the streams, live and
    against a {!Db2rdf.Engine.snapshot} — the snapshot is captured
    before the write bursts and asserted bit-stable across them.

    With [--json-dir] the experiment writes BENCH_update.json: per-phase
    times (pre-merge update stream, merge, post-merge update stream,
    live probe, snapshot probe) for both systems, the compressed
    engine's delta accounting (pending delta rows, tombstones,
    transparent thaws — expected 0 — and tables merged), and the
    streams' statement counts. *)

let stream_len = 60

let probe_src = "SELECT ?s ?v WHERE { ?s <p1> ?v }"
let dump_src = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"

(* Deterministic mixed stream: a rolling insert / targeted-delete /
   delete-where pattern over fresh vocabulary, so every statement kind
   appears and deletions hit rows the stream itself created. [base]
   offsets the vocabulary so a second stream touches fresh entities. *)
let gen_stream ?(base = 0) () =
  List.init stream_len (fun j ->
      let i = base + j in
      match j mod 3 with
      | 0 ->
        Printf.sprintf
          "INSERT DATA { <u%d> <p0> <o%d> . <u%d> <p1> \"v%d\" . <u%d> <q%d> \
           <u%d> }"
          i i i i i (i mod 7)
          (base + ((j + 1) mod stream_len))
      | 1 -> Printf.sprintf "DELETE DATA { <u%d> <p0> <o%d> }" (i - 1) (i - 1)
      | _ -> Printf.sprintf "DELETE WHERE { <u%d> ?p ?o }" (i - 2))

let sorted_rows (r : Sparql.Ref_eval.results) : string list =
  List.sort String.compare
    (List.map
       (fun row ->
         String.concat "\t"
           (List.map
              (function Some t -> Rdf.Term.to_string t | None -> "")
              row))
       r.Sparql.Ref_eval.rows)

type sys_result = {
  s_name : string;
  s_stream_ms : float;  (** first stream: writes accumulate delta-side *)
  s_delta_rows : int;  (** pending delta rows when the first stream ends *)
  s_tombstones : int;  (** pending main tombstones at the same point *)
  s_merge_ms : float;
  s_merged : int;  (** tables the explicit merge folded back *)
  s_stream2_ms : float;  (** second stream, against the merged store *)
  s_probe_ms : float;
  s_probe_rows : int;
  s_snap_ms : float;
  s_thaws : int;
}

let total_thaws e =
  let db = Db2rdf.Loader.database (Db2rdf.Engine.loader e) in
  List.fold_left
    (fun acc name ->
      acc + Relsql.Table.thaw_count (Relsql.Database.find_exn db name))
    0
    (Relsql.Database.table_names db)

let delta_accounting e =
  let db = Db2rdf.Loader.database (Db2rdf.Engine.loader e) in
  List.fold_left
    (fun (dr, tb) name ->
      let t = Relsql.Database.find_exn db name in
      (dr + Relsql.Table.delta_rows t, tb + Relsql.Table.main_tombstones t))
    (0, 0)
    (Relsql.Database.table_names db)

let best_of_3 f =
  let one () = snd (Harness.timed f) in
  let a = one () and b = one () and c = one () in
  min a (min b c)

(* One system through the whole protocol: snapshot captured before the
   first stream (must stay bit-stable across everything, the merge
   included), the timed pre-merge stream, a timed explicit merge, the
   timed post-merge stream, timed live and snapshot probes, and the
   final dump for the equality gate. *)
let run_system_with_dump name ~compress triples stream stream2 =
  let options = { Db2rdf.Engine.default_options with compress } in
  let e, _, _ =
    Db2rdf.Engine.create_colored ~options
      ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24)
      triples
  in
  let snap = Db2rdf.Engine.snapshot e in
  let snap_before =
    sorted_rows (Db2rdf.Engine.snapshot_query_string snap dump_src)
  in
  let _, stream_s =
    Harness.timed (fun () ->
        List.iter (Db2rdf.Engine.update_string e) stream)
  in
  let delta_rows, tombstones = delta_accounting e in
  let merged, merge_s = Harness.timed (fun () -> Db2rdf.Engine.merge e) in
  let _, stream2_s =
    Harness.timed (fun () ->
        List.iter (Db2rdf.Engine.update_string e) stream2)
  in
  if sorted_rows (Db2rdf.Engine.snapshot_query_string snap dump_src)
     <> snap_before
  then failwith (Printf.sprintf "E18: %s snapshot moved under the writer" name);
  let probe_s = best_of_3 (fun () -> Db2rdf.Engine.query_string e probe_src) in
  let probe_rows =
    List.length (Db2rdf.Engine.query_string e probe_src).Sparql.Ref_eval.rows
  in
  let snap2 = Db2rdf.Engine.snapshot e in
  let snap_s =
    best_of_3 (fun () -> Db2rdf.Engine.snapshot_query_string snap2 probe_src)
  in
  let dump = sorted_rows (Db2rdf.Engine.query_string e dump_src) in
  ( { s_name = name;
      s_stream_ms = 1000.0 *. stream_s;
      s_delta_rows = delta_rows;
      s_tombstones = tombstones;
      s_merge_ms = 1000.0 *. merge_s;
      s_merged = merged;
      s_stream2_ms = 1000.0 *. stream2_s;
      s_probe_ms = 1000.0 *. probe_s;
      s_probe_rows = probe_rows;
      s_snap_ms = 1000.0 *. snap_s;
      s_thaws = total_thaws e },
    dump )

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf
       "E18. SPARQL UPDATE + snapshot reads — %d triples, %d statements"
       cfg.Harness.scale stream_len);
  let triples = Workloads.Micro.generate ~scale:cfg.Harness.scale in
  let stream = gen_stream () in
  let stream2 = gen_stream ~base:1000 () in
  (* reference: the same streams over the oracle graph *)
  let g = Rdf.Graph.create () in
  List.iter (Rdf.Graph.add g) triples;
  List.iter
    (fun src -> Sparql.Ref_eval.apply_update g (Sparql.Parser.parse_update src))
    (stream @ stream2);
  let oracle =
    sorted_rows (Sparql.Ref_eval.eval g (Sparql.Parser.parse dump_src))
  in
  let boxed, boxed_dump =
    run_system_with_dump "boxed" ~compress:false triples stream stream2
  in
  let packed, packed_dump =
    run_system_with_dump "compressed" ~compress:true triples stream stream2
  in
  if boxed_dump <> oracle then
    failwith "E18: boxed engine diverges from the reference graph";
  if packed_dump <> oracle then
    failwith "E18: compressed engine diverges from the reference graph";
  Printf.printf
    "both engines match the reference graph after the streams (%d triples); \
     snapshots bit-stable under the writer\n%!"
    (List.length oracle);
  Harness.subsection "per-system times (ms)";
  Harness.print_table
    [ "system"; "stream"; "per-stmt"; "merge"; "stream'"; "per-stmt'";
      "probe"; "snap probe" ]
    (List.map
       (fun r ->
         [ r.s_name;
           Printf.sprintf "%8.2f" r.s_stream_ms;
           Printf.sprintf "%8.3f" (r.s_stream_ms /. float_of_int stream_len);
           Printf.sprintf "%8.3f" r.s_merge_ms;
           Printf.sprintf "%8.2f" r.s_stream2_ms;
           Printf.sprintf "%8.3f" (r.s_stream2_ms /. float_of_int stream_len);
           Printf.sprintf "%8.3f" r.s_probe_ms;
           Printf.sprintf "%8.3f" r.s_snap_ms ])
       [ boxed; packed ]);
  Harness.subsection "compressed delta accounting";
  Harness.print_table
    [ "system"; "delta rows"; "tombstones"; "tables merged"; "thaws" ]
    (List.map
       (fun r ->
         [ r.s_name;
           string_of_int r.s_delta_rows;
           string_of_int r.s_tombstones;
           string_of_int r.s_merged;
           string_of_int r.s_thaws ])
       [ boxed; packed ]);
  Printf.printf
    "\ncompressed write amplification vs boxed: %.2fx pre-merge, %.2fx \
     post-merge\n%!"
    (packed.s_stream_ms /. boxed.s_stream_ms)
    (packed.s_stream2_ms /. boxed.s_stream2_ms);
  let measurement r phase ms extra =
    Harness.J_obj
      ([ ("workload", Harness.J_str "micro");
         ("system", Harness.J_str r.s_name);
         ("query", Harness.J_str phase);
         ("ms", Harness.J_float ms) ]
       @ extra)
  in
  Harness.write_json cfg ~file:"BENCH_update.json"
    (Harness.J_obj
       [ ("experiment", Harness.J_str "update");
         ("scale", Harness.J_int cfg.Harness.scale);
         ("statements", Harness.J_int stream_len);
         ("final_triples", Harness.J_int (List.length oracle));
         ( "measurements",
           Harness.J_list
             (List.concat_map
                (fun r ->
                  [ measurement r "update-stream" r.s_stream_ms
                      [ ("statements", Harness.J_int stream_len);
                        ("thaws", Harness.J_int r.s_thaws);
                        ("delta_rows", Harness.J_int r.s_delta_rows);
                        ("tombstones", Harness.J_int r.s_tombstones) ];
                    measurement r "merge" r.s_merge_ms
                      [ ("tables_merged", Harness.J_int r.s_merged) ];
                    measurement r "update-stream-post-merge" r.s_stream2_ms
                      [ ("statements", Harness.J_int stream_len) ];
                    measurement r "probe" r.s_probe_ms
                      [ ("results", Harness.J_int r.s_probe_rows) ];
                    measurement r "snapshot-probe" r.s_snap_ms [] ])
                [ boxed; packed ]) ) ])
