(** Physical plan interpreter over row batches.

    Each plan node materializes into a {!Batch.t}: an ordered column
    layout plus one flat growable value vector. Execution is bottom-up
    and fully materializing, but batch-at-a-time: operators blit rows
    through reused scratch arrays instead of allocating a fresh array
    per candidate row, hash joins key their build side once per input
    batch, and selections run as a single in-place pass.

    Every node also fills an {!Opstats.t} record (rows in/out, index
    probes, hash-build size, wall time); {!run_analyzed} returns the
    resulting tree — the engine's EXPLAIN ANALYZE.

    A soft per-query timeout is enforced by a row-operation counter,
    which is how the benchmark harness reproduces the paper's timeout
    classification (Figure 15). *)

open Sql_ast

exception Timeout

type result = Batch.t

let column_names = Batch.column_names

(* ------------------------------------------------------------------ *)
(* Timeout bookkeeping                                                 *)
(* ------------------------------------------------------------------ *)

type ticker = { deadline : float option; mutable ops : int }

let tick t =
  t.ops <- t.ops + 1;
  if t.ops land 8191 = 0 then
    match t.deadline with
    | Some d when Unix.gettimeofday () > d -> raise Timeout
    | _ -> ()

(** Account for [n] row operations at once (batch-granular nodes check
    the clock once instead of once per 8k rows). *)
let tick_bulk t n =
  t.ops <- t.ops + n;
  match t.deadline with
  | Some d when Unix.gettimeofday () > d -> raise Timeout
  | _ -> ()

(* Deadline check without op accounting — safe from worker domains,
   which must not mutate the shared ticker. Each morsel body starts
   with this; the submitting domain settles [ops] with {!tick_bulk}
   after the parallel section. *)
let check_deadline t =
  match t.deadline with
  | Some d when Unix.gettimeofday () > d -> raise Timeout
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Morsel-driven parallelism                                           *)
(* ------------------------------------------------------------------ *)

(** Inputs smaller than this stay on the sequential code paths even
    when a pool is available: forking a job costs more than scanning a
    few hundred rows. Tests lower it to exercise the parallel operators
    on tiny inputs. *)
let par_min_rows = ref 128

(** [morsels_for pool n] decides how to split [n] rows: [None] keeps
    the sequential path, [Some (m, msize)] splits into [m] morsels of
    [msize] rows (the last one ragged). Several morsels per domain so
    the atomic claim counter — not a scheduler — balances skew. *)
let morsels_for pool n =
  if Dpool.size pool <= 1 || n < !par_min_rows then None
  else begin
    let target = 8 * Dpool.size pool in
    let msize = max 1 (max (!par_min_rows / 2) ((n + target - 1) / target)) in
    let m = (n + msize - 1) / msize in
    if m <= 1 then None else Some (m, msize)
  end

(** Run [fn] over [morsels] on the pool, recording the participant
    count and the section's wall time into [stats]. *)
let par_section (stats : Opstats.t) pool ~morsels fn =
  let t0 = Unix.gettimeofday () in
  let workers = Dpool.run pool ~morsels fn in
  stats.Opstats.workers <- max stats.Opstats.workers workers;
  stats.Opstats.par_ms <-
    stats.Opstats.par_ms +. ((Unix.gettimeofday () -. t0) *. 1000.0)

let rec next_pow2 n = if n <= 1 then 1 else 2 * next_pow2 ((n + 1) / 2)

(** Partition count for radix-partitioned hash-join builds: an explicit
    request is rounded up to a power of two; auto (0) gives twice the
    pool size — enough sub-tables that morsel claiming balances skewed
    builds — or 1 on a sequential pool, where partitioning is pure
    overhead. Capped so the per-partition bookkeeping of tiny builds
    stays bounded. *)
let resolve_join_partitions pool requested =
  let p =
    if requested > 0 then requested
    else if Dpool.size pool <= 1 then 1
    else 2 * Dpool.size pool
  in
  min 256 (next_pow2 p)

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let table_layout table alias : Expr_eval.layout =
  let schema = Table.schema table in
  Array.init (Schema.arity schema) (fun i -> (Some alias, Schema.column schema i))

(* A hashable key for DISTINCT / multi-column hash joins. *)
module Key = struct
  type t = Value.t list
  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash l = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 l
end

module KeyTbl = Hashtbl.Make (Key)

(* Single-value keys (the common case for generated star-join SQL) skip
   the list wrapper entirely. *)
module VTbl = Hashtbl.Make (struct
  type t = Value.t
  let equal = Value.equal
  let hash = Value.hash
end)

(* Stable parallel sort of an index array: split into contiguous
   chunks, stable-sort each on the pool, then k-way merge preferring
   the leftmost chunk on ties. Equal elements end up ordered by chunk
   and, within a chunk, by the stable per-chunk sort — i.e. by original
   position — so the result is bit-identical to a global
   [Array.stable_sort]. *)
let par_stable_sort ticker pool (stats : Opstats.t) cmp (arr : int array) =
  let n = Array.length arr in
  match morsels_for pool n with
  | None -> Array.stable_sort cmp arr
  | Some (m, msize) ->
    let chunks =
      Array.init m (fun i ->
          let lo = i * msize in
          Array.sub arr lo (min n (lo + msize) - lo))
    in
    par_section stats pool ~morsels:m (fun ~worker:_ i ->
        check_deadline ticker;
        Array.stable_sort cmp chunks.(i));
    let heads = Array.make m 0 in
    for k = 0 to n - 1 do
      let best = ref (-1) in
      for c = 0 to m - 1 do
        if heads.(c) < Array.length chunks.(c) then
          if
            !best < 0
            || cmp chunks.(c).(heads.(c)) chunks.(!best).(heads.(!best)) < 0
          then best := c
      done;
      arr.(k) <- chunks.(!best).(heads.(!best));
      heads.(!best) <- heads.(!best) + 1
    done

(** DISTINCT, ORDER BY (over precomputed per-row key columns), then
    OFFSET/LIMIT, applied to a computed output batch via an index
    permutation. *)
let finalize ticker pool stats ~distinct
    ~(sort_keys : (Value.t array * bool) list) ~limit ~offset (out : Batch.t)
    : Batch.t =
  if (not distinct) && sort_keys = [] && limit = None && offset = None then out
  else begin
    let n = Batch.length out in
    let idx = ref (Array.init n (fun i -> i)) in
    if distinct then begin
      (* Dedupe by hashing rows in place — no per-row key allocation. *)
      let w = Batch.width out in
      let row_hash i =
        let h = ref 17 in
        for j = 0 to w - 1 do
          h := (!h * 31) + Value.hash (Batch.get out i j)
        done;
        !h
      in
      let rows_eq a b =
        let rec go j =
          j >= w || (Value.equal (Batch.get out a j) (Batch.get out b j) && go (j + 1))
        in
        go 0
      in
      let seen : (int, int list ref) Hashtbl.t = Hashtbl.create (max 16 n) in
      let kept = Array.make n 0 in
      let k = ref 0 in
      Array.iter
        (fun i ->
          tick ticker;
          let h = row_hash i in
          let bucket =
            match Hashtbl.find seen h with
            | b -> b
            | exception Not_found ->
              let b = ref [] in
              Hashtbl.add seen h b;
              b
          in
          if not (List.exists (fun j -> rows_eq i j) !bucket) then begin
            bucket := i :: !bucket;
            kept.(!k) <- i;
            incr k
          end)
        !idx;
      idx := Array.sub kept 0 !k
    end;
    (match sort_keys with
     | [] -> ()
     | ks ->
       par_stable_sort ticker pool stats
         (fun a b ->
           let rec cmp = function
             | [] -> 0
             | ((col : Value.t array), asc) :: rest ->
               let c = Value.compare col.(a) col.(b) in
               if c <> 0 then if asc then c else -c else cmp rest
           in
           cmp ks)
         !idx);
    let arr = !idx in
    let len = Array.length arr in
    let start = match offset with Some o when o > 0 -> min o len | _ -> 0 in
    let stop =
      match limit with Some l -> min len (start + max 0 l) | None -> len
    in
    if (not distinct) && sort_keys = [] && start = 0 && stop = len then out
    else Batch.permute out (Array.sub arr start (stop - start))
  end

(* ------------------------------------------------------------------ *)
(* Plan interpretation                                                 *)
(* ------------------------------------------------------------------ *)

(** Per-statement execution context. CTE results stay resident as
    batches: the scope database holds a schema-only table per CTE (so
    the planner resolves the name — it consults only [indexed_columns],
    never row data, so plan shapes are unchanged) and a Scan over a CTE
    name copies the stashed batch instead of re-reading a row store. *)
type ctx = {
  db : Database.t;
  ticker : ticker;
  ctes : (string, Batch.t) Hashtbl.t;
  pool : Dpool.t;  (* size 1 = sequential execution *)
  join_parts : int;
      (* resolved radix partition count for hash-join builds (a power
         of two; 1 = sequential inline build) *)
}

let rec exec_plan ctx (plan : Planner.plan) : Batch.t * Opstats.t =
  let db = ctx.db and ticker = ctx.ticker in
  let stats = Opstats.make (Planner.node_label plan) in
  stats.Opstats.est_rows <- Planner.estimate db plan;
  let t0 = Unix.gettimeofday () in
  (* Execute an input plan, recording it as a child and its cardinality
     as consumed rows. *)
  let child p =
    let b, st = exec_plan ctx p in
    Opstats.add_child stats st;
    stats.Opstats.rows_in <- stats.Opstats.rows_in + Batch.length b;
    b
  in
  let finish out =
    stats.Opstats.rows_out <- Batch.length out;
    stats.Opstats.seconds <- Unix.gettimeofday () -. t0;
    (out, stats)
  in
  match plan with
  | Planner.Empty_row ->
    let out = Batch.create ~capacity:1 [||] in
    Batch.push_row out [||];
    finish out
  | Planner.Extvp_scan { input; _ } ->
    (* Pure marker: the wrapped access path does the work; this node
       keeps the reduction substitution (and its est-vs-actual q-error)
       visible in EXPLAIN ANALYZE. *)
    finish (child input)
  | Planner.Scan { table; alias; filter; cols } ->
    (match Hashtbl.find_opt ctx.ctes table with
     | Some src ->
       let layout =
         Array.map (fun (_, n) -> (Some alias, n)) (Batch.layout src)
       in
       let out = Batch.with_layout (Batch.copy src) layout in
       stats.Opstats.rows_in <- Batch.length src;
       tick_bulk ticker (Batch.length src);
       (match filter with
        | Some e -> Batch.retain out (Expr_eval.compile_pred layout e)
        | None -> ());
       (match cols with
        | None -> finish out
        | Some cs ->
          let out_layout =
            Array.of_list (List.map (fun n -> (Some alias, n)) cs)
          in
          let sel =
            Array.map (fun (_, n) -> Expr_eval.resolve layout (Some alias, n))
              out_layout
          in
          finish (Batch.project out out_layout sel))
     | None ->
       let t = Database.find_exn db table in
       (* Fused filter/projection scans consult the shared scan cache:
          the key embeds the table version, so a hit is valid by
          construction and a stale entry simply ages out. Raw full
          scans are not cached (the entry would be a copy of the
          table). Both the stored and the served batch are private
          copies — batch ownership stays linear. *)
       let scache = Database.scan_cache db in
       let ckey =
         if filter = None && cols = None then None
         else
           Some
             (Scan_cache.key ~table ~version:(Table.version t)
                ~enc:(Table.enc_epoch t) ~delta:(Table.delta_epoch t)
                ~filter ~cols)
       in
       (match Option.bind ckey (Scan_cache.find scache) with
        | Some hit ->
          stats.Opstats.cache_hits <- 1;
          let out =
            Batch.with_layout hit
              (Array.map (fun (_, n) -> (Some alias, n)) (Batch.layout hit))
          in
          stats.Opstats.rows_in <- Batch.length out;
          tick_bulk ticker (Batch.length out);
          finish out
        | None ->
       if ckey <> None then stats.Opstats.cache_misses <- 1;
       let layout = table_layout t alias in
       (* The filter always sees the full table row; [cols] only narrows
          what is copied into the output (fused selection/projection).
          Compiled predicates are pure closures over immutable layout
          data, so they are shared across worker domains; only the
          projection scratch is per-morsel. *)
       let compile_keep () =
         match filter with
         | Some e -> Expr_eval.compile_pred layout e
         | None -> fun _ -> true
       in
       let sel =
         Option.map
           (fun cs ->
             Array.of_list
               (List.map (fun n -> Schema.position_exn (Table.schema t) n) cs))
           cols
       in
       let make_push () =
         match sel with
         | None -> fun out row -> Batch.push_row out row
         | Some sel ->
           let scratch = Array.make (Array.length sel) Value.Null in
           fun out (row : Value.t array) ->
             for j = 0 to Array.length sel - 1 do
               scratch.(j) <- row.(sel.(j))
             done;
             Batch.push_row out scratch
       in
       let out_layout =
         match cols with
         | None -> layout
         | Some cs -> Array.of_list (List.map (fun n -> (Some alias, n)) cs)
       in
       (match Table.packed_view t with
        | Some pk ->
          (* Compressed scan over the frozen bit-packed image: zone maps
             veto whole blocks, an extracted [col = const] conjunct
             drives the column word-at-a-time (SWAR), and only surviving
             rows decode — and only the columns the projection or the
             compiled predicate actually reads. The full predicate is
             re-applied to every decoded row, so pruning is purely an
             optimization and the output is identical to the boxed
             scan's. *)
          let arity = Schema.arity (Table.schema t) in
          (* A filter made only of (in)equalities, NULL tests and IN
             lists over columns evaluates on raw packed fields — no
             decode at all for rejected rows, and survivors then decode
             only the projected columns. Preferred form is the block
             evaluator (one SWAR word scan per leaf per block, bitmaps
             combined bitwise); filters whose leaves need the CASE
             handling fall back to the per-row code predicate, and
             everything else to decoded evaluation. *)
          let bpred =
            match filter with
            | None -> None
            | Some e -> Packed.compile_block_pred pk layout e
          in
          let cpred =
            match (filter, bpred) with
            | None, _ | _, Some _ -> None
            | Some e, None -> Packed.compile_code_pred pk layout e
          in
          let code_filtered = bpred <> None || cpred <> None in
          (* The decoded-row predicate is only compiled when no code-
             level predicate could take over the whole filter. *)
          let keep =
            if code_filtered then fun _ -> true else compile_keep ()
          in
          let needed =
            match sel with
            | None -> Array.init arity (fun i -> i)
            | Some sel ->
              let refs =
                match filter with
                | None -> []
                | Some _ when code_filtered -> []
                | Some e -> Expr_eval.referenced_cols layout e
              in
              Array.of_list
                (List.sort_uniq compare (Array.to_list sel @ refs))
          in
          let zone_ok =
            match filter with
            | Some e -> Packed.compile_zone_filter pk layout e
            | None -> fun _ -> true
          in
          let pre =
            match filter with
            | Some e -> Packed.eq_prefilter pk layout e
            | None -> None
          in
          let bs = Packed.block_rows in
          let nslots = Table.slot_count t in
          (* The packed image only covers the frozen main — slots below
             [mbase]. Slots at or above it are boxed delta rows, swept
             by a separate decoded pass after the packed one (delta
             rids follow main rids, so output order is still rid
             order). *)
          let mbase = Table.main_slots t in
          (* Private scratch and push state per call, so parallel
             morsels never share mutable rows. Positions outside
             [needed] stay stale in the scratch; neither [keep] nor the
             projection reads them. *)
          let scan_range out lo hi =
            let push = make_push () in
            let scratch = Array.make arity Value.Null in
            let skipped = ref 0 and unpacked = ref 0 and tombs = ref 0 in
            let emit rid =
              incr unpacked;
              Packed.read_cols pk rid needed scratch;
              push out scratch
            in
            let visit =
              match cpred with
              | Some cp ->
                fun rid ->
                  if Table.is_live t rid then begin
                    if cp rid then emit rid
                  end
                  else incr tombs
              | None ->
                fun rid ->
                  if Table.is_live t rid then begin
                    incr unpacked;
                    Packed.read_cols pk rid needed scratch;
                    if keep scratch then push out scratch
                  end
                  else incr tombs
            in
            (* The block evaluator (and its scratch bitmaps) is private
               to this call: parallel morsels never share it. *)
            let beval = Option.map (fun mk -> mk ()) bpred in
            for bi = lo / bs to (hi - 1) / bs do
              let blo = max lo (bi * bs) and bhi = min hi ((bi + 1) * bs) in
              if not (zone_ok bi) then incr skipped
              else
                match beval with
                | Some bev ->
                  let bm = bev blo bhi in
                  for wi = 0 to (bhi - blo - 1) / 63 do
                    let bits = ref bm.(wi) in
                    if !bits <> 0 then begin
                      let base = blo + (wi * 63) in
                      let fi = ref 0 in
                      while !bits <> 0 do
                        if !bits land 1 = 1 then begin
                          let rid = base + !fi in
                          if Table.is_live t rid then emit rid
                          else incr tombs
                        end;
                        bits := !bits lsr 1;
                        incr fi
                      done
                    end
                  done
                | None -> (
                  match pre with
                  | Some (pos, codes) ->
                    Packed.iter_eq pk pos codes blo bhi visit
                  | None ->
                    for rid = blo to bhi - 1 do
                      visit rid
                    done)
            done;
            (!skipped, !unpacked, !tombs)
          in
          (* Sweep the boxed delta side with the decoded predicate —
             code/block predicates only understand packed fields, so
             the delta compiles its own. Bounded by the merge policy,
             this pass is small. *)
          let scan_delta out =
            if nslots <= mbase then 0
            else begin
              let push = make_push () in
              let keep_d = if code_filtered then compile_keep () else keep in
              let visited = ref 0 in
              Table.iter_range
                (fun _ row ->
                  incr visited;
                  if keep_d row then push out row)
                t mbase nslots;
              !visited
            end
          in
          let settle skipped unpacked tombs delta =
            stats.Opstats.blocks_skipped <-
              stats.Opstats.blocks_skipped + skipped;
            stats.Opstats.rows_unpacked <-
              stats.Opstats.rows_unpacked + unpacked;
            stats.Opstats.tombstones_skipped <-
              stats.Opstats.tombstones_skipped + tombs;
            stats.Opstats.delta_rows <- stats.Opstats.delta_rows + delta;
            stats.Opstats.rows_in <-
              stats.Opstats.rows_in + unpacked + delta;
            tick_bulk ticker (unpacked + delta)
          in
          (* Align morsels to block boundaries so zone pruning and the
             word-at-a-time pass never split a block across workers.
             Only the packed main morselizes; the delta sweep is
             sequential. *)
          let morsels =
            match morsels_for ctx.pool mbase with
            | None -> None
            | Some (_, msize) ->
              let msize = (msize + bs - 1) / bs * bs in
              let m = (mbase + msize - 1) / msize in
              if m <= 1 then None else Some (m, msize)
          in
          (match morsels with
           | Some (m, msize) ->
             let parts = Array.make m (Batch.create ~capacity:1 out_layout) in
             let skips = Array.make m 0 and unpacks = Array.make m 0 in
             let tombs = Array.make m 0 in
             par_section stats ctx.pool ~morsels:m (fun ~worker:_ i ->
                 check_deadline ticker;
                 let lo = i * msize and hi = min mbase ((i + 1) * msize) in
                 let out =
                   Batch.create ~capacity:(min 1024 (hi - lo)) out_layout
                 in
                 let s, u, tb = scan_range out lo hi in
                 skips.(i) <- s;
                 unpacks.(i) <- u;
                 tombs.(i) <- tb;
                 parts.(i) <- out);
             let out = Batch.concat out_layout parts in
             let d = scan_delta out in
             settle
               (Array.fold_left ( + ) 0 skips)
               (Array.fold_left ( + ) 0 unpacks)
               (Array.fold_left ( + ) 0 tombs)
               d;
             Option.iter (fun k -> Scan_cache.add scache k out) ckey;
             finish out
           | None ->
             let out =
               Batch.create ~capacity:(min 1024 (Table.row_count t)) out_layout
             in
             let s, u, tb = scan_range out 0 mbase in
             let d = scan_delta out in
             settle s u tb d;
             Option.iter (fun k -> Scan_cache.add scache k out) ckey;
             finish out)
        | None ->
       let keep = compile_keep () in
       (match morsels_for ctx.pool (Table.slot_count t) with
        | Some (m, msize) ->
          (* Morselized scan: each morsel filters/projects a row-slot
             range into a private batch; concatenating the batches in
             morsel order reproduces the sequential row order. *)
          let nslots = Table.slot_count t in
          let parts = Array.make m (Batch.create ~capacity:1 out_layout) in
          let seen = Array.make m 0 in
          par_section stats ctx.pool ~morsels:m (fun ~worker:_ i ->
              check_deadline ticker;
              let lo = i * msize and hi = min nslots ((i + 1) * msize) in
              let out =
                Batch.create ~capacity:(min 1024 (hi - lo)) out_layout
              in
              let push = make_push () in
              let live = ref 0 in
              Table.iter_range
                (fun _ row ->
                  incr live;
                  if keep row then push out row)
                t lo hi;
              seen.(i) <- !live;
              parts.(i) <- out);
          let total = Array.fold_left ( + ) 0 seen in
          stats.Opstats.rows_in <- stats.Opstats.rows_in + total;
          tick_bulk ticker total;
          let out = Batch.concat out_layout parts in
          Option.iter (fun k -> Scan_cache.add scache k out) ckey;
          finish out
        | None ->
          (* Cap the initial capacity: a selective filter over a wide
             table (DPH is ~50 columns) would otherwise pre-allocate the
             full table footprint for a handful of surviving rows. *)
          let out =
            Batch.create ~capacity:(min 1024 (Table.row_count t)) out_layout
          in
          let push = make_push () in
          Table.iter
            (fun _ row ->
              tick ticker;
              stats.Opstats.rows_in <- stats.Opstats.rows_in + 1;
              if keep row then push out row)
            t;
          Option.iter (fun k -> Scan_cache.add scache k out) ckey;
          finish out))))
  | Planner.Index_lookup { table; alias; col; keys; filter; cols } ->
    let t = Database.find_exn db table in
    let layout = table_layout t alias in
    let pos = Schema.position_exn (Table.schema t) col in
    let compile_keep () =
      match filter with
      | Some e -> Expr_eval.compile_pred layout e
      | None -> fun _ -> true
    in
    let push =
      match cols with
      | None -> fun out row -> Batch.push_row out row
      | Some cs ->
        let sel =
          Array.of_list
            (List.map (fun n -> Schema.position_exn (Table.schema t) n) cs)
        in
        let scratch = Array.make (Array.length sel) Value.Null in
        fun out (row : Value.t array) ->
          for j = 0 to Array.length sel - 1 do
            scratch.(j) <- row.(sel.(j))
          done;
          Batch.push_row out scratch
    in
    let out_layout =
      match cols with
      | None -> layout
      | Some cs -> Array.of_list (List.map (fun n -> (Some alias, n)) cs)
    in
    (* Frozen tables decode probed rows into a reused scratch — and only
       the columns the filter or projection reads. A filter that
       compiles to a code predicate is tested on the raw packed fields
       first, so rejected rows decode nothing at all. Rids at or above
       the frozen main live in the boxed delta: the packed image (and
       its code predicates) does not cover them, so those dispatch to a
       decoded-row check. *)
    let handle_rid =
      match Table.packed_view t with
      | None ->
        let keep = compile_keep () in
        fun out rid ->
          let row = Table.get t rid in
          if keep row then push out row
      | Some pk ->
        let mbase = Table.main_slots t in
        let arity = Schema.arity (Table.schema t) in
        let code_keep =
          match filter with
          | None -> None
          | Some e -> Packed.compile_code_pred pk layout e
        in
        let needed =
          match cols with
          | None -> Array.init arity (fun i -> i)
          | Some cs ->
            let sel =
              List.map (fun n -> Schema.position_exn (Table.schema t) n) cs
            in
            let refs =
              match (filter, code_keep) with
              | None, _ | _, Some _ -> []
              | Some e, None -> Expr_eval.referenced_cols layout e
            in
            Array.of_list (List.sort_uniq compare (sel @ refs))
        in
        let scratch = Array.make arity Value.Null in
        let keep = compile_keep () in
        let delta out rid =
          stats.Opstats.delta_rows <- stats.Opstats.delta_rows + 1;
          let row = Table.get t rid in
          if keep row then push out row
        in
        (match code_keep with
         | Some cp ->
           fun out rid ->
             if rid < mbase then begin
               if cp rid then begin
                 Packed.read_cols pk rid needed scratch;
                 push out scratch
               end
             end
             else delta out rid
         | None ->
           fun out rid ->
             if rid < mbase then begin
               Packed.read_cols pk rid needed scratch;
               if keep scratch then push out scratch
             end
             else delta out rid)
    in
    let out = Batch.create out_layout in
    let probe = Table.prober t pos in
    List.iter
      (fun key ->
        stats.Opstats.index_probes <- stats.Opstats.index_probes + 1;
        probe key (fun rid ->
            tick ticker;
            stats.Opstats.rows_in <- stats.Opstats.rows_in + 1;
            handle_rid out rid))
      keys;
    finish out
  | Planner.Values_rows { rows; alias; cols } ->
    let layout = Array.of_list (List.map (fun c -> (Some alias, c)) cols) in
    let out = Batch.create ~capacity:(List.length rows) layout in
    List.iter
      (fun exprs ->
        Batch.push_row out
          (Array.of_list (List.map (fun e -> Expr_eval.eval_const e) exprs)))
      rows;
    finish out
  | Planner.Subplan { plan; alias } ->
    let b = child plan in
    finish
      (Batch.with_layout b
         (Array.map (fun (_, n) -> (Some alias, n)) (Batch.layout b)))
  | Planner.Inl_join { outer; table; alias; col; key; kind; residual; cols } ->
    let o = child outer in
    let t = Database.find_exn db table in
    let inner_table_layout = table_layout t alias in
    (* [cols] prunes the inner columns that survive into the output row
       (the planner kept everything the ancestors and any cross-side
       residual reference); [sel] maps output cell -> table position. *)
    let inner_layout, sel =
      match cols with
      | None ->
        (inner_table_layout,
         Array.init (Array.length inner_table_layout) (fun i -> i))
      | Some cs ->
        ( Array.of_list (List.map (fun n -> (Some alias, n)) cs),
          Array.of_list
            (List.map (fun n -> Schema.position_exn (Table.schema t) n) cs) )
    in
    let layout = Array.append (Batch.layout o) inner_layout in
    let pos = Schema.position_exn (Table.schema t) col in
    (* A residual that mentions only the inner table's columns is
       checked against the (full) table row itself, before anything is
       copied anywhere — a failing candidate (the common case for
       pred-selective probes) costs one closure call, not a blit. *)
    (* An inner-only residual that compiles to a code predicate tests
       raw packed fields before any decode; a successful compile also
       proves the residual references the inner table alone, so the
       decoded-row predicate is never built. *)
    let inner_code_keep =
      match (Table.packed_view t, residual) with
      | Some pk, Some e -> Packed.compile_code_pred pk inner_table_layout e
      | _ -> None
    in
    let inner_keep, cross_keep =
      match residual with
      | None -> ((fun _ -> true), None)
      | Some e when inner_code_keep <> None ->
        (* A successful code-pred compile proves the residual is
           inner-only, so this decoded predicate always compiles. The
           packed main never consults it — but boxed delta rids do: the
           code predicate reads raw packed fields that do not exist for
           them. *)
        (Expr_eval.compile_pred inner_table_layout e, None)
      | Some e ->
        (match Expr_eval.compile_pred inner_table_layout e with
         | p -> (p, None)
         | exception Expr_eval.Unknown_column _ ->
           ((fun _ -> true), Some (Expr_eval.compile_pred layout e)))
    in
    let ow = Batch.width o and iw = Array.length inner_layout in
    let no = Batch.length o in
    (* Frozen inner tables decode probed rows into a reused scratch —
       only the projected columns plus whatever the inner-side residual
       reads. Each caller makes its own reader: parallel morsels must
       not share the scratch. Probed rids at or above the frozen main
       are boxed delta rows the packed image does not cover; those read
       through {!Table.get}. *)
    let inner_mbase = Table.main_slots t in
    let make_read_inner =
      match Table.packed_view t with
      | None -> fun () rid -> Table.get t rid
      | Some pk ->
        let refs =
          match (residual, inner_code_keep) with
          | None, _ | _, Some _ -> []
          | Some e, None -> Expr_eval.referenced_cols inner_table_layout e
        in
        let needed =
          Array.of_list (List.sort_uniq compare (Array.to_list sel @ refs))
        in
        fun () ->
          let scratch =
            Array.make (Array.length inner_table_layout) Value.Null
          in
          fun rid ->
            if rid < inner_mbase then begin
              Packed.read_cols pk rid needed scratch;
              scratch
            end
            else Table.get t rid
    in
    let out =
      match cross_keep, key with
      | None, Col (q, n) ->
        (* Fused path (the shape of all generated star-join SQL): plain
           column key and no cross-side residual. Probe straight off the
           outer batch and blit each match directly into the output —
           no intermediate scratch row, half the cell writes. All probe
           state (cursor, matched flag, push closure, counters) lives in
           [probe_range] so parallel morsels get private instances. *)
        let ko = Expr_eval.resolve (Batch.layout o) (q, n) in
        let probe_range ~on_rid_tick probe (out : Batch.t) lo hi =
          let push =
            match cols with
            | None -> fun i irow -> Batch.push_join out ~src:o i irow iw
            | Some _ -> fun i irow -> Batch.push_join_sel out ~src:o i irow sel
          in
          let cur = ref 0 and matched = ref false in
          let rids = ref 0 and probes = ref 0 in
          let read_inner = make_read_inner () in
          let on_rid =
            match inner_code_keep with
            | Some cp ->
              fun rid ->
                on_rid_tick ();
                incr rids;
                if rid < inner_mbase then begin
                  if cp rid then begin
                    matched := true;
                    push !cur (read_inner rid)
                  end
                end
                else begin
                  let irow = read_inner rid in
                  if inner_keep irow then begin
                    matched := true;
                    push !cur irow
                  end
                end
            | None ->
              fun rid ->
                on_rid_tick ();
                incr rids;
                let irow = read_inner rid in
                if inner_keep irow then begin
                  matched := true;
                  push !cur irow
                end
          in
          for i = lo to hi - 1 do
            if i land 8191 = 0 then check_deadline ticker;
            cur := i;
            matched := false;
            let k = Batch.get o i ko in
            if not (Value.is_null k) then begin
              incr probes;
              probe k on_rid
            end;
            if (not !matched) && kind = Left_outer then
              Batch.push_padded out ~src:o i
          done;
          (!rids, !probes)
        in
        (match morsels_for ctx.pool no with
         | Some (m, msize) ->
           (* Parallel probe: [Table.prober_ro] never compacts postings,
              so worker domains share the index read-only. Each morsel
              probes a contiguous outer range into a private batch;
              concatenation in morsel order reproduces the sequential
              output (postings iterate in insertion order either way). *)
           let probe = Table.prober_ro t pos in
           let parts = Array.make m (Batch.create ~capacity:1 layout) in
           let rids = Array.make m 0 and probes = Array.make m 0 in
           par_section stats ctx.pool ~morsels:m (fun ~worker:_ mi ->
               check_deadline ticker;
               let lo = mi * msize and hi = min no ((mi + 1) * msize) in
               let b = Batch.create ~capacity:(min 1024 (hi - lo)) layout in
               let nr, np = probe_range ~on_rid_tick:ignore probe b lo hi in
               rids.(mi) <- nr;
               probes.(mi) <- np;
               parts.(mi) <- b);
           stats.Opstats.index_probes <-
             stats.Opstats.index_probes + Array.fold_left ( + ) 0 probes;
           tick_bulk ticker (Array.fold_left ( + ) 0 rids);
           Batch.concat layout parts
         | None ->
           let out = Batch.create ~capacity:(min 1024 no) layout in
           let _, probes =
             probe_range
               ~on_rid_tick:(fun () -> tick ticker)
               (Table.prober t pos) out 0 no
           in
           stats.Opstats.index_probes <- stats.Opstats.index_probes + probes;
           out)
      | _ ->
        let out = Batch.create ~capacity:(min 1024 no) layout in
        (* One probe callback for the whole batch — allocating it (and
           the [matched] flag) per outer row showed up in join-heavy
           profiles. *)
        let probe = Table.prober t pos in
        let matched = ref false in
        let key_fn = Expr_eval.compile (Batch.layout o) key in
        let keep =
          match cross_keep with Some f -> f | None -> fun _ -> true
        in
        let scratch = Array.make (ow + iw) Value.Null in
        let read_inner = make_read_inner () in
        let accept irow =
          for j = 0 to iw - 1 do
            scratch.(ow + j) <- irow.(sel.(j))
          done;
          if keep scratch then begin
            matched := true;
            Batch.push_row out scratch
          end
        in
        let on_rid =
          match inner_code_keep with
          | Some cp ->
            fun rid ->
              tick ticker;
              if rid < inner_mbase then begin
                if cp rid then accept (read_inner rid)
              end
              else begin
                let irow = read_inner rid in
                if inner_keep irow then accept irow
              end
          | None ->
            fun rid ->
              tick ticker;
              let irow = read_inner rid in
              if inner_keep irow then accept irow
        in
        for i = 0 to no - 1 do
          Batch.blit_row o i scratch 0;
          let k = key_fn scratch in
          matched := false;
          if not (Value.is_null k) then begin
            stats.Opstats.index_probes <- stats.Opstats.index_probes + 1;
            probe k on_rid
          end;
          if (not !matched) && kind = Left_outer then begin
            Array.fill scratch ow iw Value.Null;
            Batch.push_row out scratch
          end
        done;
        out
    in
    finish out
  | Planner.Hash_join { left; right; left_keys; right_keys; kind; residual } ->
    let l = child left in
    let r = child right in
    let llay = Batch.layout l and rlay = Batch.layout r in
    let layout = Array.append llay rlay in
    let keep =
      match residual with
      | Some e -> Expr_eval.compile_pred layout e
      | None -> fun _ -> true
    in
    let lw = Batch.width l and rw = Batch.width r in
    let nr = Batch.length r in
    let rscratch = Array.make rw Value.Null in
    (* Build once over the right batch; [probe row f] calls [f] on the
       matching build row indices in build order. The sequential builds'
       backward loops make the cons-lists come out forward; the
       partitioned build appends ascending per partition — either way
       matches replay in global build order, so every build strategy
       emits bit-identical output. *)
    (* A build key that is a plain column reads straight out of the
       right batch — no full-row blit just to extract one cell (DPH/RPH
       rows are wide, so the blit dominated single-key builds). *)
    let direct_rk =
      match right_keys with
      | [ Col (q, n) ] -> (
        match Expr_eval.resolve rlay (q, n) with
        | kc -> Some kc
        | exception Expr_eval.Unknown_column _ -> None)
      | _ -> None
    in
    let probe : Value.t array -> (int -> unit) -> unit =
      match
        ( List.map (Expr_eval.compile llay) left_keys,
          List.map (Expr_eval.compile rlay) right_keys )
      with
      | [ lf ], [ rf ] when ctx.join_parts > 1 && nr >= !par_min_rows ->
        (* Radix-partitioned parallel build (Balkesen et al., ICDE
           2013, morselized): extract keys, two-phase histogram/scatter
           them into hash partitions, then build disjoint per-partition
           sub-tables — one morsel per partition, so no two workers
           ever touch the same hash table and the "merge" is just the
           sub-table array. [Dpool.partition] keeps each partition's
           rows in ascending build order regardless of how workers
           claimed morsels; probes route by the same hash the scatter
           used and replay matches in that order. *)
        let bt0 = Unix.gettimeofday () in
        let keys = Array.make nr Value.Null in
        let kw =
          Dpool.run_ranges ctx.pool ~n:nr (fun ~worker:_ ~lo ~hi ->
              check_deadline ticker;
              match direct_rk with
              | Some kc ->
                for i = lo to hi - 1 do
                  keys.(i) <- Batch.get r i kc
                done
              | None ->
                let scratch = Array.make rw Value.Null in
                for i = lo to hi - 1 do
                  Batch.blit_row r i scratch 0;
                  keys.(i) <- rf scratch
                done)
        in
        let jh = Table.Join_hash.create ~parts:ctx.join_parts in
        let starts, perm =
          Dpool.partition ctx.pool ~n:nr ~parts:ctx.join_parts
            ~part_of:(fun i ->
              let k = keys.(i) in
              if Value.is_null k then -1 else Table.Join_hash.part_of jh k)
        in
        let bw =
          Dpool.run ctx.pool ~morsels:ctx.join_parts (fun ~worker:_ p ->
              check_deadline ticker;
              for s = starts.(p) to starts.(p + 1) - 1 do
                let i = perm.(s) in
                Table.Join_hash.add jh p keys.(i) i
              done)
        in
        tick_bulk ticker nr;
        stats.Opstats.build_rows <-
          stats.Opstats.build_rows + starts.(ctx.join_parts);
        stats.Opstats.partitions <- ctx.join_parts;
        stats.Opstats.build_workers <- max kw bw;
        stats.Opstats.build_ms <- (Unix.gettimeofday () -. bt0) *. 1000.0;
        fun row f ->
          let k = lf row in
          if not (Value.is_null k) then Table.Join_hash.iter_matches jh k f
      | [ lf ], [ rf ] ->
        let tbl = VTbl.create (max 16 nr) in
        for i = nr - 1 downto 0 do
          tick ticker;
          let k =
            match direct_rk with
            | Some kc -> Batch.get r i kc
            | None ->
              Batch.blit_row r i rscratch 0;
              rf rscratch
          in
          if not (Value.is_null k) then begin
            stats.Opstats.build_rows <- stats.Opstats.build_rows + 1;
            VTbl.replace tbl k
              (i :: (try VTbl.find tbl k with Not_found -> []))
          end
        done;
        fun row f ->
          let k = lf row in
          if not (Value.is_null k) then
            List.iter f (try VTbl.find tbl k with Not_found -> [])
      | lfs, rfs ->
        let tbl = KeyTbl.create (max 16 nr) in
        for i = nr - 1 downto 0 do
          tick ticker;
          Batch.blit_row r i rscratch 0;
          let k = List.map (fun f -> f rscratch) rfs in
          if not (List.exists Value.is_null k) then begin
            stats.Opstats.build_rows <- stats.Opstats.build_rows + 1;
            KeyTbl.replace tbl k
              (i :: (try KeyTbl.find tbl k with Not_found -> []))
          end
        done;
        fun row f ->
          let k = List.map (fun f -> f row) lfs in
          if not (List.exists Value.is_null k) then
            List.iter f (try KeyTbl.find tbl k with Not_found -> [])
    in
    let probe_range out scratch lo hi =
      let matched = ref false in
      let emit j =
        Batch.blit_row r j scratch lw;
        if keep scratch then begin
          matched := true;
          Batch.push_row out scratch
        end
      in
      for i = lo to hi - 1 do
        if i land 8191 = 0 then check_deadline ticker;
        Batch.blit_row l i scratch 0;
        matched := false;
        probe scratch emit;
        if (not !matched) && kind = Left_outer then begin
          Array.fill scratch lw rw Value.Null;
          Batch.push_row out scratch
        end
      done
    in
    let nl = Batch.length l in
    (match morsels_for ctx.pool nl with
     | Some (m, msize) ->
       (* The build table is frozen before the section starts; workers
          only read it. Each morsel probes a left-row range into a
          private batch with private scratch; concatenation in morsel
          order reproduces the sequential output order. *)
       let parts = Array.make m (Batch.create ~capacity:1 layout) in
       par_section stats ctx.pool ~morsels:m (fun ~worker:_ mi ->
           check_deadline ticker;
           let lo = mi * msize and hi = min nl ((mi + 1) * msize) in
           let out = Batch.create ~capacity:(min 1024 (hi - lo)) layout in
           probe_range out (Array.make (lw + rw) Value.Null) lo hi;
           parts.(mi) <- out);
       let out = Batch.concat layout parts in
       tick_bulk ticker (nl + Batch.length out);
       finish out
     | None ->
       let out = Batch.create ~capacity:(min 1024 nl) layout in
       tick_bulk ticker nl;
       probe_range out (Array.make (lw + rw) Value.Null) 0 nl;
       finish out)
  | Planner.Nl_join { left; right; kind; cond } ->
    let l = child left in
    let r = child right in
    let layout = Array.append (Batch.layout l) (Batch.layout r) in
    let keep =
      match cond with
      | Some e -> Expr_eval.compile_pred layout e
      | None -> fun _ -> true
    in
    let lw = Batch.width l and rw = Batch.width r in
    let scratch = Array.make (lw + rw) Value.Null in
    let out = Batch.create ~capacity:(min 1024 (Batch.length l)) layout in
    let matched = ref false in
    for i = 0 to Batch.length l - 1 do
      Batch.blit_row l i scratch 0;
      matched := false;
      for j = 0 to Batch.length r - 1 do
        tick ticker;
        Batch.blit_row r j scratch lw;
        if keep scratch then begin
          matched := true;
          Batch.push_row out scratch
        end
      done;
      if (not !matched) && kind = Left_outer then begin
        Array.fill scratch lw rw Value.Null;
        Batch.push_row out scratch
      end
    done;
    finish out
  | Planner.Values_join { outer; rows; alias; cols } ->
    let o = child outer in
    let vals_layout = Array.of_list (List.map (fun c -> (Some alias, c)) cols) in
    let layout = Array.append (Batch.layout o) vals_layout in
    (* Row expressions may reference outer columns (lateral). *)
    let compiled =
      List.map (fun exprs -> List.map (Expr_eval.compile (Batch.layout o)) exprs) rows
    in
    let ow = Batch.width o and vw = Array.length vals_layout in
    let scratch = Array.make (ow + vw) Value.Null in
    let out = Batch.create ~capacity:(min 1024 (Batch.length o)) layout in
    for i = 0 to Batch.length o - 1 do
      Batch.blit_row o i scratch 0;
      List.iter
        (fun fns ->
          tick ticker;
          List.iteri (fun j f -> scratch.(ow + j) <- f scratch) fns;
          Batch.push_row out scratch)
        compiled
    done;
    finish out
  | Planner.Wcoj { atoms; var_order; n_vars; outputs; est_rows = _ } ->
    (* Leapfrog runs sequentially against base tables only (the planner
       excludes materialized CTEs), so the result is bit-identical
       regardless of the domain count. *)
    finish
      (Leapfrog.run ~tick:(tick_bulk ticker) ~stats db atoms ~var_order
         ~n_vars ~outputs)
  | Planner.Filter (p, e) ->
    let b = child p in
    let keep = Expr_eval.compile_pred (Batch.layout b) e in
    Batch.retain b (fun row ->
        tick ticker;
        keep row);
    finish b
  | Planner.Project { input; items; distinct; order_by; limit; offset } ->
    let b = child input in
    let in_layout = Batch.layout b in
    (* All-column projections (the shape star-join SQL generates) skip
       per-row closure dispatch: resolve each column once and blit. *)
    let plain_cols =
      if order_by <> [] then None
      else
        try
          Some
            (Array.of_list
               (List.map
                  (function
                    | Col (q, n), _ -> Expr_eval.resolve in_layout (q, n)
                    | _ -> raise Exit)
                  items))
        with Exit -> None
    in
    (match plain_cols with
     | Some cols ->
       let out_layout =
         Array.of_list (List.map (fun (_, name) -> (None, name)) items)
       in
       tick_bulk ticker (Batch.length b);
       let out = Batch.project b out_layout cols in
       finish
         (finalize ticker ctx.pool stats ~distinct ~sort_keys:[] ~limit ~offset
            out)
     | None ->
    let fns =
      Array.of_list (List.map (fun (e, _) -> Expr_eval.compile in_layout e) items)
    in
    let out_layout =
      Array.of_list (List.map (fun (_, name) -> (None, name)) items)
    in
    let n = Batch.length b in
    (* Sort keys resolve against the input layout when their columns do
       (e.g. "R.v_yr"), otherwise the output aliases (e.g. "yr"); SQL
       applies DISTINCT before ORDER BY. Keys are evaluated once per row
       into columns, not once per comparison. *)
    let sort_srcs =
      List.map
        (fun { sort_expr; asc } ->
          match Expr_eval.compile in_layout sort_expr with
          | f -> (`In f, asc)
          | exception Expr_eval.Unknown_column _ ->
            (`Out (Expr_eval.compile out_layout sort_expr), asc))
        order_by
    in
    let sort_keys =
      List.map (fun (_, asc) -> (Array.make n Value.Null, asc)) sort_srcs
    in
    let scratch = Array.make (Batch.width b) Value.Null in
    let orow = Array.make (Array.length fns) Value.Null in
    let out = Batch.create ~capacity:n out_layout in
    for i = 0 to n - 1 do
      tick ticker;
      Batch.blit_row b i scratch 0;
      Array.iteri (fun j f -> orow.(j) <- f scratch) fns;
      Batch.push_row out orow;
      List.iter2
        (fun (src, _) ((col : Value.t array), _) ->
          col.(i) <- (match src with `In f -> f scratch | `Out f -> f orow))
        sort_srcs sort_keys
    done;
    finish (finalize ticker ctx.pool stats ~distinct ~sort_keys ~limit ~offset out))
  | Planner.Aggregate { input; keys; items; distinct; order_by; limit; offset } ->
    let b = child input in
    let in_layout = Batch.layout b in
    let key_fns = List.map (Expr_eval.compile in_layout) keys in
    (* One accumulator per output item. *)
    let module Acc = struct
      type t = {
        mutable count : int;
        mutable sum : float;
        mutable all_int : bool;
        mutable minimum : Value.t option;
        mutable maximum : Value.t option;
        seen : int KeyTbl.t option;
            (* DISTINCT tracking: distinct key -> global index of its
               first occurrence. The sequential path only tests
               membership; the parallel merge replays keys in
               first-occurrence order. *)
      }
    end in
    let compiled_items =
      List.map
        (function
          | Planner.Ai_plain (e, name) ->
            `Plain (Expr_eval.compile in_layout e, name)
          | Planner.Ai_agg (fn, arg, dist, name) ->
            `Agg (fn, Option.map (Expr_eval.compile in_layout) arg, dist, name))
        items
    in
    let fresh_accs () =
      List.filter_map
        (function
          | `Plain _ -> None
          | `Agg (_, _, dist, _) ->
            Some
              { Acc.count = 0; sum = 0.0; all_int = true; minimum = None;
                maximum = None;
                seen = (if dist then Some (KeyTbl.create 8) else None) })
        compiled_items
      |> Array.of_list
    in
    (* num-aware ordering for MIN/MAX, consistent with comparisons *)
    let value_lt a b =
      match Value.as_float a, Value.as_float b with
      | Some x, Some y -> x < y
      | _ -> Value.compare a b < 0
    in
    (* Scalar accumulator update — shared by the sequential path, the
       parallel workers and the DISTINCT-merge replay. *)
    let acc_apply (acc : Acc.t) v =
      acc.Acc.count <- acc.Acc.count + 1;
      (match Value.as_float v with
       | Some x ->
         acc.Acc.sum <- acc.Acc.sum +. x;
         (match v with Value.Int _ -> () | _ -> acc.Acc.all_int <- false)
       | None -> ());
      (match acc.Acc.minimum with
       | None -> acc.Acc.minimum <- Some v
       | Some m -> if value_lt v m then acc.Acc.minimum <- Some v);
      match acc.Acc.maximum with
      | None -> acc.Acc.maximum <- Some v
      | Some m -> if value_lt m v then acc.Acc.maximum <- Some v
    in
    let arg_value arg scratch =
      match arg with None -> Value.Bool true | Some f -> f scratch
    in
    (* count-star counts every row; with an argument NULLs don't count *)
    let counted arg v =
      match arg with None -> true | Some _ -> not (Value.is_null v)
    in
    (* Arg-less COUNT DISTINCT is distinct over whole input rows, not
       over the constant the arg-less case evaluates to. *)
    let distinct_key arg v scratch =
      match arg with Some _ -> [ v ] | None -> Array.to_list scratch
    in
    let n = Batch.length b in
    let out_layout =
      Array.of_list
        (List.map
           (function `Plain (_, n) -> (None, n) | `Agg (_, _, _, n) -> (None, n))
           compiled_items)
    in
    let emit_group (first_row, accs) =
      let ai = ref 0 in
      Array.of_list
        (List.map
           (function
             | `Plain (f, _) ->
               if Array.length first_row = 0 then Value.Null else f first_row
             | `Agg (fn, _, _, _) ->
               let acc = accs.(!ai) in
               incr ai;
               (match (fn : Sql_ast.agg_fun) with
                | Sql_ast.A_count -> Value.Int acc.Acc.count
                | Sql_ast.A_sum ->
                  if acc.Acc.count = 0 then Value.Int 0
                  else if acc.Acc.all_int then Value.Int (int_of_float acc.Acc.sum)
                  else Value.Real acc.Acc.sum
                | Sql_ast.A_avg ->
                  if acc.Acc.count = 0 then Value.Null
                  else Value.Real (acc.Acc.sum /. float_of_int acc.Acc.count)
                | Sql_ast.A_min -> Option.value ~default:Value.Null acc.Acc.minimum
                | Sql_ast.A_max -> Option.value ~default:Value.Null acc.Acc.maximum))
           compiled_items)
    in
    let out =
      match morsels_for ctx.pool n with
      | None ->
        let groups : (Value.t array * Acc.t array) KeyTbl.t =
          KeyTbl.create 64
        in
        let order = ref [] in
        let scratch = Array.make (Batch.width b) Value.Null in
        for i = 0 to n - 1 do
          tick ticker;
          Batch.blit_row b i scratch 0;
          let key = List.map (fun f -> f scratch) key_fns in
          let _, accs =
            try KeyTbl.find groups key
            with Not_found ->
              let entry = (Array.copy scratch, fresh_accs ()) in
              KeyTbl.add groups key entry;
              order := key :: !order;
              entry
          in
          let ai = ref 0 in
          List.iter
            (function
              | `Plain _ -> ()
              | `Agg (_, arg, _, _) ->
                let acc = accs.(!ai) in
                incr ai;
                let v = arg_value arg scratch in
                if counted arg v then begin
                  let fresh =
                    match acc.Acc.seen with
                    | None -> true
                    | Some seen ->
                      let dk = distinct_key arg v scratch in
                      if KeyTbl.mem seen dk then false
                      else begin
                        KeyTbl.add seen dk i;
                        true
                      end
                  in
                  if fresh then acc_apply acc v
                end)
            compiled_items
        done;
        (* SQL: no GROUP BY and no rows still yields one (empty) group. *)
        if keys = [] && KeyTbl.length groups = 0 then begin
          KeyTbl.add groups [] ([||], fresh_accs ());
          order := [ [] ]
        end;
        let out = Batch.create ~capacity:(KeyTbl.length groups) out_layout in
        List.iter
          (fun key -> Batch.push_row out (emit_group (KeyTbl.find groups key)))
          (List.rev !order);
        out
      | Some (m, msize) ->
        (* Parallel aggregation: each worker folds the morsels it claims
           into a private group table, partials merge at the barrier.
           Groups carry the least global row index of any member so the
           merged output can be emitted in first-occurrence order — the
           sequential output order. *)
        let module G = struct
          type t = {
            mutable fidx : int;  (* least global row index in the group *)
            mutable frow : Value.t array;  (* copy of that row *)
            accs : Acc.t array;
          }
        end in
        let wgroups : G.t KeyTbl.t array =
          Array.init (Dpool.size ctx.pool) (fun _ -> KeyTbl.create 64)
        in
        par_section stats ctx.pool ~morsels:m (fun ~worker mi ->
            check_deadline ticker;
            let groups = wgroups.(worker) in
            let scratch = Array.make (Batch.width b) Value.Null in
            let lo = mi * msize and hi = min n ((mi + 1) * msize) in
            for i = lo to hi - 1 do
              Batch.blit_row b i scratch 0;
              let key = List.map (fun f -> f scratch) key_fns in
              let g =
                match KeyTbl.find_opt groups key with
                | Some g ->
                  (* Morsels are claimed out of order: keep the row with
                     the least global index as group representative. *)
                  if i < g.G.fidx then begin
                    g.G.fidx <- i;
                    g.G.frow <- Array.copy scratch
                  end;
                  g
                | None ->
                  let g =
                    { G.fidx = i; frow = Array.copy scratch;
                      accs = fresh_accs () }
                  in
                  KeyTbl.add groups key g;
                  g
              in
              let ai = ref 0 in
              List.iter
                (function
                  | `Plain _ -> ()
                  | `Agg (_, arg, _, _) ->
                    let acc = g.G.accs.(!ai) in
                    incr ai;
                    let v = arg_value arg scratch in
                    if counted arg v then
                      match acc.Acc.seen with
                      | None -> acc_apply acc v
                      | Some seen ->
                        (* DISTINCT partials only record first-occurrence
                           indices; the merge replays them globally so
                           cross-worker duplicates collapse correctly. *)
                        let dk = distinct_key arg v scratch in
                        (match KeyTbl.find_opt seen dk with
                         | Some j -> if i < j then KeyTbl.replace seen dk i
                         | None -> KeyTbl.add seen dk i))
                compiled_items
            done);
        tick_bulk ticker n;
        let acc_merge (a : Acc.t) (p : Acc.t) =
          a.Acc.count <- a.Acc.count + p.Acc.count;
          a.Acc.sum <- a.Acc.sum +. p.Acc.sum;
          a.Acc.all_int <- a.Acc.all_int && p.Acc.all_int;
          (match p.Acc.minimum with
           | None -> ()
           | Some v ->
             (match a.Acc.minimum with
              | None -> a.Acc.minimum <- Some v
              | Some mn -> if value_lt v mn then a.Acc.minimum <- Some v));
          (match p.Acc.maximum with
           | None -> ()
           | Some v ->
             (match a.Acc.maximum with
              | None -> a.Acc.maximum <- Some v
              | Some mx -> if value_lt mx v then a.Acc.maximum <- Some v));
          match a.Acc.seen, p.Acc.seen with
          | Some sa, Some sp ->
            KeyTbl.iter
              (fun dk i ->
                match KeyTbl.find_opt sa dk with
                | Some j -> if i < j then KeyTbl.replace sa dk i
                | None -> KeyTbl.add sa dk i)
              sp
          | _ -> ()
        in
        let merged : G.t KeyTbl.t = KeyTbl.create 64 in
        Array.iter
          (fun wg ->
            KeyTbl.iter
              (fun key (g : G.t) ->
                match KeyTbl.find_opt merged key with
                | None -> KeyTbl.add merged key g
                | Some mg ->
                  if g.G.fidx < mg.G.fidx then begin
                    mg.G.fidx <- g.G.fidx;
                    mg.G.frow <- g.G.frow
                  end;
                  Array.iter2 acc_merge mg.G.accs g.G.accs)
              wg)
          wgroups;
        (* Rebuild DISTINCT accumulators from their merged key sets,
           replayed in first-occurrence order — identical to the
           sequential accumulation, including float summation order. *)
        let agg_has_arg =
          Array.of_list
            (List.filter_map
               (function
                 | `Plain _ -> None
                 | `Agg (_, arg, _, _) -> Some (arg <> None))
               compiled_items)
        in
        KeyTbl.iter
          (fun _ (g : G.t) ->
            Array.iteri
              (fun ai (acc : Acc.t) ->
                match acc.Acc.seen with
                | None -> ()
                | Some seen ->
                  acc.Acc.count <- 0;
                  acc.Acc.sum <- 0.0;
                  acc.Acc.all_int <- true;
                  acc.Acc.minimum <- None;
                  acc.Acc.maximum <- None;
                  KeyTbl.fold (fun dk i l -> (i, dk) :: l) seen []
                  |> List.sort (fun (i, _) (j, _) -> compare (i : int) j)
                  |> List.iter (fun (_, dk) ->
                         acc_apply acc
                           (if agg_has_arg.(ai) then List.hd dk
                            else Value.Bool true)))
              g.G.accs)
          merged;
        let ordered =
          List.sort
            (fun (a : G.t) b -> compare a.G.fidx b.G.fidx)
            (KeyTbl.fold (fun _ g l -> g :: l) merged [])
        in
        if keys = [] && ordered = [] then begin
          let out = Batch.create ~capacity:1 out_layout in
          Batch.push_row out (emit_group ([||], fresh_accs ()));
          out
        end
        else begin
          let out = Batch.create ~capacity:(List.length ordered) out_layout in
          List.iter
            (fun (g : G.t) ->
              Batch.push_row out (emit_group (g.G.frow, g.G.accs)))
            ordered;
          out
        end
    in
    (* Distinct / order / limit over the aggregated output. *)
    let sort_keys =
      match order_by with
      | [] -> []
      | obs ->
        let n = Batch.length out in
        let oscratch = Array.make (Batch.width out) Value.Null in
        let cols =
          List.map
            (fun { sort_expr; asc } ->
              (Expr_eval.compile out_layout sort_expr, Array.make n Value.Null, asc))
            obs
        in
        for i = 0 to n - 1 do
          Batch.blit_row out i oscratch 0;
          List.iter (fun (f, col, _) -> col.(i) <- f oscratch) cols
        done;
        List.map (fun (_, col, asc) -> (col, asc)) cols
    in
    finish (finalize ticker ctx.pool stats ~distinct ~sort_keys ~limit ~offset out)
  | Planner.Union_plan { all; parts } ->
    (match parts with
     | [] -> finish (Batch.create [||])
     | _ ->
       let batches = List.map child parts in
       let first = List.hd batches in
       let total = List.fold_left (fun a b -> a + Batch.length b) 0 batches in
       let out = Batch.create ~capacity:total (Batch.layout first) in
       List.iter (fun b -> Batch.append out b) batches;
       if not all then begin
         let seen = KeyTbl.create (max 16 (Batch.length out)) in
         Batch.retain out (fun row ->
             tick ticker;
             let k = Array.to_list row in
             if KeyTbl.mem seen k then false
             else begin
               KeyTbl.add seen k ();
               true
             end)
       end;
       finish out)

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

let materialize name (b : Batch.t) : Table.t =
  let schema = Schema.make (Batch.column_names b) in
  let t = Table.create name schema in
  for i = 0 to Batch.length b - 1 do
    ignore (Table.insert t (Batch.row_copy b i))
  done;
  t

(** Run a full statement: materialize each CTE in order into an overlay
    database, then evaluate the body, collecting per-operator stats.
    [timeout] is in seconds of wall time for the whole statement.
    [domains] caps the worker domains hot operators may fan out over
    (default: the database's {!Database.parallelism}; 1 keeps every
    operator on its sequential code path). [join_partitions] requests a
    radix partition count for parallel hash-join builds (default: the
    database's {!Database.join_partitions}; 0 = auto from the pool
    size). Neither knob changes results — only how the work is split. *)
let run_with_stats ?timeout ?domains ?join_partitions db (stmt : stmt) :
    Batch.t * Opstats.t =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let ticker = { deadline; ops = 0 } in
  let t0 = Unix.gettimeofday () in
  let root = Opstats.make "statement" in
  let scope = Database.overlay db in
  let pool =
    Dpool.get
      (match domains with Some n -> n | None -> Database.parallelism db)
  in
  let join_parts =
    resolve_join_partitions pool
      (match join_partitions with
       | Some n -> n
       | None -> Database.join_partitions db)
  in
  let ctx = { db = scope; ticker; ctes = Hashtbl.create 4; pool; join_parts } in
  let wrap label (b, st) =
    let w = Opstats.make label in
    Opstats.add_child w st;
    w.Opstats.rows_in <- st.Opstats.rows_in;
    w.Opstats.rows_out <- Batch.length b;
    w.Opstats.seconds <- st.Opstats.seconds;
    Opstats.add_child root w;
    root.Opstats.rows_in <- root.Opstats.rows_in + Batch.length b;
    b
  in
  List.iter
    (fun (name, q) ->
      let plan = Planner.plan_query scope q in
      let b = wrap ("CTE " ^ name) (exec_plan ctx plan) in
      (* The result stays resident as a batch; the scope only gets a
         schema-only table so later plans resolve the name. *)
      Database.add_table scope
        (Table.create name (Schema.make (Batch.column_names b)));
      Hashtbl.replace ctx.ctes name b)
    stmt.ctes;
  let plan = Planner.plan_query scope stmt.body in
  let b = wrap "body" (exec_plan ctx plan) in
  root.Opstats.rows_out <- Batch.length b;
  root.Opstats.seconds <- Unix.gettimeofday () -. t0;
  (b, root)

let run ?timeout ?domains ?join_partitions db stmt =
  fst (run_with_stats ?timeout ?domains ?join_partitions db stmt)

let run_analyzed ?timeout ?domains ?join_partitions db stmt =
  run_with_stats ?timeout ?domains ?join_partitions db stmt

(** Explain: the physical plans of each CTE and the body, as text. With
    [~analyze:true] the statement is also executed and the per-operator
    metrics tree appended. *)
let explain ?(analyze = false) ?timeout ?domains ?join_partitions db
    (stmt : stmt) : string =
  let buf = Buffer.create 512 in
  let scope = Database.overlay db in
  List.iter
    (fun (name, q) ->
      Buffer.add_string buf ("CTE " ^ name ^ ":\n");
      let plan = Planner.plan_query scope q in
      Buffer.add_string buf (Planner.plan_to_string plan);
      (* Register an empty table so later CTEs/body resolve the name. *)
      Database.add_table scope (Table.create name (Schema.make [])))
    stmt.ctes;
  Buffer.add_string buf "body:\n";
  Buffer.add_string buf (Planner.plan_to_string (Planner.plan_query scope stmt.body));
  if analyze then begin
    let _, stats = run_with_stats ?timeout ?domains ?join_partitions db stmt in
    Buffer.add_string buf "analyze:\n";
    Buffer.add_string buf (Opstats.to_string stats)
  end;
  Buffer.contents buf
