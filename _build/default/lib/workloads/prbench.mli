(** PRBench-like workload: the paper's private tool-integration
    benchmark — software artifacts (bug reports, requirements, test
    cases, commits, builds) produced by different tools and
    cross-linked, with a 40-way-UNION query (PQ28) and a cluster of
    long-running joins (PQ10, PQ26, PQ27). *)

val ns : string
val u : string -> string

(** Generate roughly [scale] triples. Deterministic. *)
val generate : scale:int -> Rdf.Triple.t list

(** PQ1–PQ29. *)
val queries : (string * string) list
