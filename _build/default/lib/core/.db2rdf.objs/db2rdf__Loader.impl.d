lib/core/loader.ml: Array Dataset_stats Hashtbl Layout List Pred_map Rdf Relsql
