lib/core/engine.mli: Coloring Layout Loader Merge Pred_map Rdf Relsql Sparql Store
