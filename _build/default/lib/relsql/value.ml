(** SQL values.

    The engine is dynamically typed: every cell holds a {!t}. [Null] is the
    SQL NULL and participates in three-valued logic (see {!Expr_eval}).
    [Lid] is a distinct identifier space used by the DB2RDF layer for the
    multi-value indirection between the primary (DPH/RPH) and secondary
    (DS/RS) hash relations; keeping it distinct from [Int] prevents an
    RDF-term id from ever colliding with a list id. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Lid of int

(** Total order over values, used by indexes, DISTINCT and ORDER BY.
    NULLs sort first; values of different runtime types are ordered by a
    fixed type rank. This ordering is only for data structures — SQL
    comparison semantics (where NULL is incomparable) live in
    {!Expr_eval}. *)
let compare a b =
  let rank = function
    | Null -> 0 | Bool _ -> 1 | Int _ -> 2 | Real _ -> 3 | Str _ -> 4
    | Lid _ -> 5
  in
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Real x, Real y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Lid x, Lid y -> Stdlib.compare x y
  | (Null | Bool _ | Int _ | Real _ | Str _ | Lid _), _ ->
    Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash i
  | Real r -> Hashtbl.hash r
  | Str s -> Hashtbl.hash s
  | Lid i -> Hashtbl.hash (i, 'l')

let is_null = function Null -> true | _ -> false

(** Render a value as a SQL literal. Strings are single-quoted with
    quote doubling; [Lid] ids render as [lid:<n>] (informational — the
    SQL parser also accepts this form). *)
let to_string = function
  | Null -> "NULL"
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"
  | Int i -> string_of_int i
  | Real r -> Printf.sprintf "%g" r
  | Str s ->
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '\'';
    String.iter
      (fun c -> if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
      s;
    Buffer.add_char b '\'';
    Buffer.contents b
  | Lid i -> Printf.sprintf "lid:%d" i

let pp fmt v = Format.pp_print_string fmt (to_string v)

(** Approximate on-disk size in bytes of a value under the
    value-compression storage model used for the Section 2.3 NULL
    experiment: NULLs are elided entirely (their presence is carried by
    the per-row null bitmap accounted in {!Table.storage_size}),
    fixed-width types cost their width plus a presence byte, strings
    their length plus a two-byte length header. *)
let storage_size = function
  | Null -> 0
  | Bool _ -> 2
  | Int _ -> 9
  | Real _ -> 9
  | Lid _ -> 9
  | Str s -> 3 + String.length s

(** Numeric view used by arithmetic and ordered comparisons. *)
let as_float = function
  | Int i -> Some (float_of_int i)
  | Real r -> Some r
  | Bool _ | Null | Str _ | Lid _ -> None
