(** Decoding relational query output back to RDF terms, shared by every
    relational store.

    Ordinary projected columns hold dictionary ids ([Int id], or NULL
    for unbound OPTIONAL variables). Aggregate columns hold computed
    values: counts as [Int], numeric aggregates as [Real]/[Int] — these
    decode through {!Rdf.Term.of_number} so they compare equal to the
    reference evaluator's aggregate terms. *)

let decode (dict : Rdf.Dictionary.t) (q : Sparql.Ast.query)
    (r : Relsql.Executor.result) : Sparql.Ref_eval.results =
  let vars = Sparql.Ast.projected_vars q in
  let n_plain = List.length vars - List.length q.Sparql.Ast.aggregates in
  let decode_cell pos v =
    match v with
    | Relsql.Value.Null -> None
    | Relsql.Value.Int id when pos < n_plain ->
      Some (Rdf.Dictionary.term_of dict id)
    | Relsql.Value.Int n -> Some (Rdf.Term.int_lit n)
    | Relsql.Value.Real x -> Some (Rdf.Term.of_number x)
    | v -> failwith ("unexpected value in result: " ^ Relsql.Value.to_string v)
  in
  let n = Relsql.Batch.length r and w = Relsql.Batch.width r in
  let rows =
    List.init n (fun i ->
        List.init w (fun j -> decode_cell j (Relsql.Batch.get r i j)))
  in
  { Sparql.Ref_eval.vars; rows }
