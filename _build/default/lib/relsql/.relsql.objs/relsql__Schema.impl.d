lib/relsql/schema.ml: Array Format Hashtbl String
