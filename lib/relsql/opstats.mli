(** Per-operator execution metrics (the EXPLAIN ANALYZE tree).

    Filled by {!Executor} during an analyzed run; the tree mirrors the
    physical plan, with synthetic [CTE <name>] / [body] wrappers at
    statement level. The record is mutable and public so the executor
    can fill it incrementally and benchmarks can serialize it. *)

type t = {
  label : string;  (** one-line operator description *)
  mutable rows_in : int;  (** rows consumed across all inputs *)
  mutable rows_out : int;  (** rows produced *)
  mutable index_probes : int;  (** hash-index lookups issued *)
  mutable build_rows : int;  (** rows entered into a hash-join build *)
  mutable seconds : float;  (** inclusive wall time *)
  mutable workers : int;
      (** domains that participated in this operator's parallel section
          (1 = sequential execution) *)
  mutable par_ms : float;
      (** wall milliseconds spent inside the parallel section *)
  mutable partitions : int;
      (** radix partitions of a partitioned hash-join build
          (0 = build was not partitioned) *)
  mutable build_workers : int;
      (** domains that participated in the partitioned build *)
  mutable build_ms : float;
      (** wall milliseconds spent building the join hash table *)
  mutable cache_hits : int;
      (** shared-scan-cache hits serving this operator *)
  mutable cache_misses : int;
      (** shared-scan-cache misses (result computed, then cached) *)
  mutable blocks_skipped : int;
      (** packed-scan blocks pruned by zone maps without unpacking *)
  mutable rows_unpacked : int;
      (** live rows decompressed by the packed scan (post-skip) *)
  mutable delta_rows : int;
      (** boxed delta-side rows a frozen-table scan/probe visited *)
  mutable tombstones_skipped : int;
      (** rows a frozen-table scan skipped via the tombstone bitmap *)
  mutable est_rows : int;
      (** planner's output-cardinality estimate (-1 = not recorded);
          EXPLAIN ANALYZE reports it against [rows_out] as a q-error *)
  mutable children : t list;  (** inputs, in plan order *)
}

val make : string -> t

(** Append a child (keeps plan order). *)
val add_child : t -> t -> unit

(** Preorder fold over the tree. *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val iter : (t -> unit) -> t -> unit

(** Wall time spent in the node itself, excluding its inputs. *)
val self_seconds : t -> float

(** Every node whose label starts with [prefix], in preorder. *)
val find_all : t -> prefix:string -> t list

(** Estimated-vs-actual cardinality ratio (always >= 1.0, add-one
    smoothed); [None] until an estimate was recorded. *)
val q_error : t -> float option

(** Indented tree rendering, one node per line with its counters. *)
val to_string : t -> string
