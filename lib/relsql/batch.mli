(** Growable row batches: the executor's intermediate representation.

    A batch is a column layout plus one flat [Value.t array] holding rows
    contiguously (row-major). Operators append rows by blitting from a
    scratch array, so a candidate row costs a few array writes rather
    than a list cons plus a fresh allocation. Ownership is linear: each
    batch has a single consumer, which may mutate it in place. *)

type t

(** [create ?capacity layout] is an empty batch of rows shaped by
    [layout]. [capacity] is a row-count hint. *)
val create : ?capacity:int -> Expr_eval.layout -> t

val layout : t -> Expr_eval.layout

(** Cells per row (the layout's length; may be 0). *)
val width : t -> int

(** Number of rows. *)
val length : t -> int

val column_names : t -> string list

(** Same rows, re-qualified columns (subquery aliasing). Shares the data
    array; the original batch must not be used afterwards. *)
val with_layout : t -> Expr_eval.layout -> t

(** Append a row by copying [width] cells from the given array (which
    may be a shared scratch — the batch never retains it). *)
val push_row : t -> Value.t array -> unit

(** [get b i j] is cell [j] of row [i] (unchecked). *)
val get : t -> int -> int -> Value.t

val set : t -> int -> int -> Value.t -> unit

(** [blit_row b i dst off] copies row [i] into [dst] at [off]. *)
val blit_row : t -> int -> Value.t array -> int -> unit

(** Fresh copy of row [i]. *)
val row_copy : t -> int -> Value.t array

(** In-place retain: the predicate sees each row via a reused scratch
    array; rows mapped to [false] are dropped and the rest compacted. *)
val retain : t -> (Value.t array -> bool) -> unit

(** A new batch holding the rows selected by the index array, in that
    order (indices may repeat or be dropped). *)
val permute : t -> int array -> t

(** An independent copy (fresh data array). *)
val copy : t -> t

(** [project b layout cols] is a new batch holding, for every row, the
    cells at positions [cols] (in that order) under [layout]. *)
val project : t -> Expr_eval.layout -> int array -> t

(** [push_join b ~src i extra iw] appends row [i] of [src] followed by
    the first [iw] cells of [extra] (fused index-join output). *)
val push_join : t -> src:t -> int -> Value.t array -> int -> unit

(** [push_join_sel b ~src i extra sel] is {!push_join} with the extra
    cells picked by position ([extra.(sel.(j))] — column pruning). *)
val push_join_sel : t -> src:t -> int -> Value.t array -> int array -> unit

(** Append row [i] of [src], right-padded with NULLs to this batch's
    width (left-outer null fill). *)
val push_padded : t -> src:t -> int -> unit

(** Append every row of the second batch to the first (equal widths). *)
val append : t -> t -> unit

(** One batch holding the rows of the given batches in order — how
    parallel operators reassemble per-morsel outputs deterministically. *)
val concat : Expr_eval.layout -> t array -> t

(** Iterate rows through a reused scratch array (do not retain it). *)
val iter : (Value.t array -> unit) -> t -> unit

(** Materialize as a list of fresh row arrays (compatibility/decoding). *)
val to_rows : t -> Value.t array list

val of_rows : Expr_eval.layout -> Value.t array list -> t
