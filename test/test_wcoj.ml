(** Worst-case-optimal multiway join: flat-form emission and its
    eligibility guards, leapfrog execution against the star-merged
    pipeline (bit-identical across compression and parallelism),
    characteristic-set statistics and their budgeted merge, the
    cost-model selector, the options-fingerprinted statement cache, and
    the freeze→query→thaw→query scan-cache epoch invariant. *)

let wcoj_on = { Db2rdf.Engine.default_options with wcoj = true }

(** Replace the engine's cost-model selector with an unconditional yes,
    so the leapfrog operator runs whenever the plan shape allows — the
    datasets here are far too small for the CS chooser to pick it. *)
let force_wcoj e =
  Relsql.Database.set_wcoj_selector
    (Db2rdf.Loader.database (Db2rdf.Engine.loader e))
    (Some (fun _ -> { Relsql.Wcoj.use_wcoj = true; est_rows = 0 }))

let micro_triples = lazy (Workloads.Micro.generate ~scale:600)

let load_engine ?(options = Db2rdf.Engine.default_options) () =
  let e = Db2rdf.Engine.create ~options () in
  Db2rdf.Engine.load e (Lazy.force micro_triples);
  e

let star3 =
  Printf.sprintf "SELECT ?s ?a ?b ?c WHERE { ?s <%s> ?a . ?s <%s> ?b . ?s <%s> ?c . }"
    (Workloads.Micro.sv 1) (Workloads.Micro.sv 2) (Workloads.Micro.sv 3)

let parse = Sparql.Parser.parse

(* ------------------------------------------------------------------ *)
(* Flat-form emission and guards                                       *)
(* ------------------------------------------------------------------ *)

let test_flat_form_emitted () =
  let e = load_engine () in
  (* The selector gates emission at translation time too; force it so
     the lone-star shape (which the cost model declines) still emits. *)
  force_wcoj e;
  let sql_of options =
    Relsql.Sql_pp.to_string
      (Db2rdf.Engine.translate ~options e (parse star3))
  in
  Alcotest.(check bool)
    "wcoj option emits the flat WCOJ CTE" true
    (Helpers.contains (sql_of wcoj_on) "WCOJ");
  Alcotest.(check bool)
    "default translation has no WCOJ CTE" false
    (Helpers.contains (sql_of Db2rdf.Engine.default_options) "WCOJ")

let test_multivalued_guard () =
  let e = load_engine () in
  (* Force the selector so the only thing standing between this query
     and the flat form is the multi-valued guard itself. MV1's rows
     live behind the DS relation, which the flat single-CTE form cannot
     reach — it must bail out. *)
  force_wcoj e;
  let q =
    Printf.sprintf
      "SELECT ?s ?a ?b ?c WHERE { ?s <%s> ?a . ?s <%s> ?b . ?s <%s> ?c . }"
      (Workloads.Micro.sv 1) (Workloads.Micro.sv 2) (Workloads.Micro.mv 1)
  in
  let sql =
    Relsql.Sql_pp.to_string
      (Db2rdf.Engine.translate ~options:wcoj_on e (parse q))
  in
  Alcotest.(check bool) "multi-valued predicate vetoes the flat form" false
    (Helpers.contains sql "WCOJ")

let test_storage_columns () =
  let e = load_engine () in
  let loader = Db2rdf.Engine.loader e in
  let dict = Db2rdf.Engine.dictionary e in
  let pid name = Option.get (Rdf.Dictionary.find dict (Rdf.Term.iri name)) in
  let cols = Db2rdf.Loader.storage_columns loader Db2rdf.Loader.Direct
      ~pred_id:(pid (Workloads.Micro.sv 1)) in
  Alcotest.(check bool) "SV1 stored in exactly one direct column" true
    (List.length cols = 1);
  let cands =
    Db2rdf.Loader.candidate_columns loader Db2rdf.Loader.Direct
      ~pred_term:(Rdf.Term.iri (Workloads.Micro.sv 1))
  in
  Alcotest.(check bool) "storage columns are a subset of the candidates" true
    (List.for_all (fun c -> List.mem c cands) cols);
  Alcotest.(check (list int)) "unknown predicate has no storage columns" []
    (Db2rdf.Loader.storage_columns loader Db2rdf.Loader.Direct
       ~pred_id:999_999)

(* ------------------------------------------------------------------ *)
(* Leapfrog execution                                                  *)
(* ------------------------------------------------------------------ *)

let test_leapfrog_runs_and_matches () =
  let base = load_engine () in
  let e = load_engine ~options:wcoj_on () in
  force_wcoj e;
  let q = parse star3 in
  let text = Db2rdf.Engine.explain e q in
  Alcotest.(check bool) "physical plan contains the leapfrog operator"
    true
    (Helpers.contains text "LeapfrogJoin");
  let want = Db2rdf.Engine.query base q in
  let got = Db2rdf.Engine.query e q in
  Alcotest.(check bool) "leapfrog answers match the binary-join pipeline"
    true
    (Sparql.Ref_eval.equal_results want got)

let test_leapfrog_deterministic_across_physical_knobs () =
  let q = parse star3 in
  let run options =
    let e = load_engine ~options () in
    force_wcoj e;
    (Db2rdf.Engine.query e q).Sparql.Ref_eval.rows
  in
  let seq = run wcoj_on in
  let packed = run { wcoj_on with compress = true } in
  let par = run { wcoj_on with parallelism = 4 } in
  Alcotest.(check bool) "leapfrog rows identical under compression" true
    (seq = packed);
  Alcotest.(check bool) "leapfrog rows identical under parallelism" true
    (seq = par)

let test_leapfrog_constant_object () =
  (* Pin one object to a constant: the flat form must still agree. *)
  let base = load_engine () in
  let e = load_engine ~options:wcoj_on () in
  force_wcoj e;
  let some_object =
    (* first object of an SV2 triple in the dataset *)
    List.find_map
      (fun tr ->
        if tr.Rdf.Triple.p = Rdf.Term.iri (Workloads.Micro.sv 2) then
          Some (Rdf.Term.to_string tr.Rdf.Triple.o)
        else None)
      (Lazy.force micro_triples)
    |> Option.get
  in
  let q =
    parse
      (Printf.sprintf
         "SELECT ?s ?a ?c WHERE { ?s <%s> ?a . ?s <%s> %s . ?s <%s> ?c . }"
         (Workloads.Micro.sv 1) (Workloads.Micro.sv 2) some_object
         (Workloads.Micro.sv 3))
  in
  Alcotest.(check bool) "constant-object star matches" true
    (Sparql.Ref_eval.equal_results
       (Db2rdf.Engine.query base q)
       (Db2rdf.Engine.query e q))

(* ------------------------------------------------------------------ *)
(* Characteristic sets                                                 *)
(* ------------------------------------------------------------------ *)

let cs_stats () =
  (* Subjects 1,2 carry {10,11}; 3 carries {10}; 4 carries {10,11,12}. *)
  let st = Db2rdf.Dataset_stats.create () in
  let r s p = Db2rdf.Dataset_stats.record st ~s ~p ~o:(100 + s) in
  r 1 10; r 1 11;
  r 2 10; r 2 11;
  r 3 10;
  r 4 10; r 4 11; r 4 12;
  st

let test_cs_partition () =
  let st = cs_stats () in
  let sets = Db2rdf.Dataset_stats.characteristic_sets st in
  let as_list =
    Array.to_list sets |> List.map (fun (k, c) -> (Array.to_list k, c))
  in
  Alcotest.(check (list (pair (list int) int)))
    "exact partition below budget"
    [ ([ 10 ], 1); ([ 10; 11 ], 2); ([ 10; 11; 12 ], 1) ]
    as_list;
  Alcotest.(check int) "covering count for [10]" 4
    (Db2rdf.Dataset_stats.cs_subject_count st [ 10 ]);
  Alcotest.(check int) "covering count for [10;11]" 3
    (Db2rdf.Dataset_stats.cs_subject_count st [ 10; 11 ]);
  Alcotest.(check int) "covering count for [12]" 1
    (Db2rdf.Dataset_stats.cs_subject_count st [ 12 ]);
  Alcotest.(check int) "covering count for unknown predicate" 0
    (Db2rdf.Dataset_stats.cs_subject_count st [ 99 ])

let test_cs_budget_merge () =
  let st = cs_stats () in
  let sets = Db2rdf.Dataset_stats.characteristic_sets ~budget:2 st in
  Alcotest.(check bool) "merged partition fits the budget" true
    (Array.length sets <= 2);
  Alcotest.(check int) "subject mass preserved by merging" 4
    (Array.fold_left (fun acc (_, c) -> acc + c) 0 sets);
  (* Merging only widens sets, so superset counts stay
     over-approximations of the exact partition's. *)
  Alcotest.(check bool) "covering count stays an over-approximation" true
    (Db2rdf.Dataset_stats.cs_subject_count ~budget:2 st [ 10; 11 ] >= 3);
  Alcotest.(check int) "all subjects still cover [10]" 4
    (Db2rdf.Dataset_stats.cs_subject_count ~budget:2 st [ 10 ])

let test_cs_invalidation () =
  let st = cs_stats () in
  ignore (Db2rdf.Dataset_stats.characteristic_sets st);
  Db2rdf.Dataset_stats.record st ~s:5 ~p:12 ~o:105;
  Alcotest.(check int) "new subject visible after cache invalidation" 2
    (Db2rdf.Dataset_stats.cs_subject_count st [ 12 ])

(* ------------------------------------------------------------------ *)
(* Cost-model selector                                                 *)
(* ------------------------------------------------------------------ *)

let star_atom alias ~entry ~pred ~v : Relsql.Wcoj.atom =
  { Relsql.Wcoj.w_table = "DPH";
    w_alias = alias;
    w_cols =
      [ ("entry", entry);
        ("pred0", Relsql.Wcoj.W_const (Relsql.Value.Int pred));
        ("val0", v) ] }

let test_decision_cyclic () =
  (* Triangle x→y→z→x: 6 incidences > 3 atoms + 3 vars - 1. *)
  let open Relsql.Wcoj in
  let atoms =
    [ star_atom "W0" ~entry:(W_var 0) ~pred:10 ~v:(W_var 1);
      star_atom "W1" ~entry:(W_var 1) ~pred:11 ~v:(W_var 2);
      star_atom "W2" ~entry:(W_var 2) ~pred:12 ~v:(W_var 0) ]
  in
  let d =
    Db2rdf.Cost.wcoj_decision
      (Db2rdf.Dataset_stats.create ())
      { atoms; n_vars = 3; binary_est = 1 }
  in
  Alcotest.(check bool) "cyclic region always chooses WCOJ" true
    d.use_wcoj

(* The acyclic chooser refuses tiny stores outright; the fixtures here
   are a handful of triples, so the floor is lifted for the duration. *)
let without_scan_floor f () =
  let saved = !Db2rdf.Cost.wcoj_scan_floor in
  Db2rdf.Cost.wcoj_scan_floor := 0;
  Fun.protect ~finally:(fun () -> Db2rdf.Cost.wcoj_scan_floor := saved) f

let test_decision_star () =
  let open Relsql.Wcoj in
  let st = cs_stats () in
  let star =
    [ star_atom "W0" ~entry:(W_var 0) ~pred:10 ~v:(W_var 1);
      star_atom "W1" ~entry:(W_var 0) ~pred:11 ~v:(W_var 2);
      star_atom "W2" ~entry:(W_var 0) ~pred:12 ~v:(W_var 3) ]
  in
  (* A lone star — however wide, however favourable the margin — stays
     on the default pipeline: one star is one merged scan already. *)
  let lone =
    Db2rdf.Cost.wcoj_decision st { atoms = star; n_vars = 4; binary_est = 1000 }
  in
  Alcotest.(check bool) "single star keeps the merged scan" false
    lone.use_wcoj;
  (* A snowflake — the W2 value chains into a second star region — with
     a binary estimate far above the CS estimate takes the leapfrog. *)
  let snowflake =
    star @ [ star_atom "W3" ~entry:(W_var 3) ~pred:10 ~v:(W_var 4) ]
  in
  let cheap =
    Db2rdf.Cost.wcoj_decision st
      { atoms = snowflake; n_vars = 5; binary_est = 1000 }
  in
  Alcotest.(check bool) "snowflake with margin chooses WCOJ" true
    cheap.use_wcoj;
  (* Star V0 covers {10,11,12} (1 subject); star V3 is referenced
     through W2's value, so its covering count (4 of 4 subjects) enters
     as a selectivity of 1, not as a multiplier. *)
  Alcotest.(check int) "referenced star filters, never multiplies" 1
    cheap.est_rows;
  (* ...while a binary plan already estimated cheaper keeps the tree. *)
  let tight =
    Db2rdf.Cost.wcoj_decision st
      { atoms = snowflake; n_vars = 5; binary_est = 2 }
  in
  Alcotest.(check bool) "no margin keeps the binary tree" false
    tight.use_wcoj;
  (* Two width-2 stars never qualify on hub width. *)
  let narrow =
    Db2rdf.Cost.wcoj_decision st
      { atoms =
          [ List.nth star 0; List.nth star 1;
            star_atom "W3" ~entry:(W_var 2) ~pred:10 ~v:(W_var 3);
            star_atom "W4" ~entry:(W_var 2) ~pred:11 ~v:(W_var 4) ];
        n_vars = 5; binary_est = 1000 }
  in
  Alcotest.(check bool) "width-2 stars keep the binary tree" false
    narrow.use_wcoj

let test_decision_vetoes () =
  let open Relsql.Wcoj in
  let st = cs_stats () in
  let snowflake =
    [ star_atom "W0" ~entry:(W_var 0) ~pred:10 ~v:(W_var 1);
      star_atom "W1" ~entry:(W_var 0) ~pred:11 ~v:(W_var 2);
      star_atom "W2" ~entry:(W_var 0) ~pred:12 ~v:(W_var 3);
      star_atom "W3" ~entry:(W_var 3) ~pred:10 ~v:(W_var 4) ]
  in
  let req = { atoms = snowflake; n_vars = 5; binary_est = 1000 } in
  (* With the default floor the 8-triple fixture always declines... *)
  Alcotest.(check bool) "tiny store declines on the scan floor" false
    (Db2rdf.Cost.wcoj_decision st req).use_wcoj;
  without_scan_floor
    (fun () ->
      (* ...without it, the same request qualifies (see decision star). *)
      Alcotest.(check bool) "floor lifted, snowflake qualifies" true
        (Db2rdf.Cost.wcoj_decision st req).use_wcoj;
      (* A selective constant object (103 appears once in 8 triples)
         hands the binary tree an object-index probe chain — veto. *)
      let shortcut =
        { atoms =
            [ List.nth snowflake 0;
              star_atom "W1" ~entry:(W_var 0) ~pred:11
                ~v:(W_const (Relsql.Value.Int 103));
              List.nth snowflake 2; List.nth snowflake 3 ];
          n_vars = 4; binary_est = 1000 }
      in
      Alcotest.(check bool) "selective constant object declines" false
        (Db2rdf.Cost.wcoj_decision st shortcut).use_wcoj)
    ()

(* ------------------------------------------------------------------ *)
(* Statement cache keyed by plan-shape fingerprint (satellite)         *)
(* ------------------------------------------------------------------ *)

let test_options_fingerprint_distinct () =
  let fp = Db2rdf.Engine.options_fingerprint in
  let d = Db2rdf.Engine.default_options in
  Alcotest.(check bool) "wcoj flips the fingerprint" true
    (fp d <> fp { d with wcoj = true });
  Alcotest.(check bool) "merge flips the fingerprint" true
    (fp d <> fp { d with merge = false });
  Alcotest.(check bool) "parallelism flips the fingerprint" true
    (fp d <> fp { d with parallelism = 4 })

let test_statement_cache_not_shared_across_options () =
  let e = load_engine () in
  let hits e = (Db2rdf.Engine.plan_cache_stats e).Relsql.Plan_cache.hits in
  let entries e =
    (Db2rdf.Engine.plan_cache_stats e).Relsql.Plan_cache.entries
  in
  ignore (Db2rdf.Engine.query_string e star3);
  Alcotest.(check int) "first run misses" 0 (hits e);
  Alcotest.(check int) "first run cached" 1 (entries e);
  ignore (Db2rdf.Engine.query_string e star3);
  Alcotest.(check int) "same text + same options hits" 1 (hits e);
  (* Same text under different plan-shape options must NOT reuse the
     cached statement: its SQL has a different shape. *)
  let e' = Db2rdf.Engine.with_options e wcoj_on in
  force_wcoj e';
  let r = Db2rdf.Engine.query_string e' star3 in
  Alcotest.(check int) "different options miss" 1 (hits e');
  Alcotest.(check int) "both plans cached side by side" 2 (entries e');
  ignore (Db2rdf.Engine.query_string e' star3);
  Alcotest.(check int) "second wcoj run hits its own entry" 2 (hits e');
  (* And the per-call override takes the same keyed path. *)
  let r2 = Db2rdf.Engine.query_string ~options:wcoj_on e star3 in
  Alcotest.(check int) "per-call override hits the wcoj entry" 3 (hits e);
  Alcotest.(check bool) "cached plans answer identically" true
    (Sparql.Ref_eval.equal_results r r2)

(* ------------------------------------------------------------------ *)
(* Freeze → query → thaw → query (scan-cache epochs, satellite)        *)
(* ------------------------------------------------------------------ *)

let test_freeze_query_thaw_query () =
  let e = load_engine () in
  let db = Db2rdf.Loader.database (Db2rdf.Engine.loader e) in
  let q = parse star3 in
  let boxed = Db2rdf.Engine.query e q in
  (* Populate the scan cache on boxed storage, then freeze: the frozen
     run must not be served postings computed on the boxed epoch. *)
  Relsql.Database.freeze_all db;
  let frozen = Db2rdf.Engine.query e q in
  Alcotest.(check bool) "frozen answers match boxed" true
    (Sparql.Ref_eval.equal_results boxed frozen);
  List.iter
    (fun name -> Relsql.Table.thaw (Relsql.Database.find_exn db name))
    (Relsql.Database.table_names db);
  let thawed = Db2rdf.Engine.query e q in
  Alcotest.(check bool) "thawed answers match boxed" true
    (Sparql.Ref_eval.equal_results boxed thawed);
  (* One more freeze→query round through the warmed cache. *)
  Relsql.Database.freeze_all db;
  let refrozen = Db2rdf.Engine.query e q in
  Alcotest.(check bool) "re-frozen answers match boxed" true
    (Sparql.Ref_eval.equal_results boxed refrozen)

let suite =
  [ Alcotest.test_case "flat form emitted" `Quick test_flat_form_emitted;
    Alcotest.test_case "multivalued guard" `Quick test_multivalued_guard;
    Alcotest.test_case "storage columns" `Quick test_storage_columns;
    Alcotest.test_case "leapfrog runs and matches" `Quick
      test_leapfrog_runs_and_matches;
    Alcotest.test_case "leapfrog deterministic across knobs" `Quick
      test_leapfrog_deterministic_across_physical_knobs;
    Alcotest.test_case "leapfrog constant object" `Quick
      test_leapfrog_constant_object;
    Alcotest.test_case "cs partition" `Quick test_cs_partition;
    Alcotest.test_case "cs budget merge" `Quick test_cs_budget_merge;
    Alcotest.test_case "cs invalidation" `Quick test_cs_invalidation;
    Alcotest.test_case "decision cyclic" `Quick test_decision_cyclic;
    Alcotest.test_case "decision star" `Quick
      (without_scan_floor test_decision_star);
    Alcotest.test_case "decision vetoes" `Quick test_decision_vetoes;
    Alcotest.test_case "options fingerprint distinct" `Quick
      test_options_fingerprint_distinct;
    Alcotest.test_case "statement cache keyed by options" `Quick
      test_statement_cache_not_shared_across_options;
    Alcotest.test_case "freeze query thaw query" `Quick
      test_freeze_query_thaw_query ]
