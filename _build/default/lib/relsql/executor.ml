(** Physical plan interpreter.

    Each plan node materializes into a {!result}: an ordered column layout
    plus rows (value arrays). Execution is bottom-up and fully
    materializing — adequate at the 10⁵–10⁶-triple scales the benchmarks
    run at, and it keeps operator semantics obvious. A soft per-query
    timeout is enforced by a row-operation counter, which is how the
    benchmark harness reproduces the paper's timeout classification
    (Figure 15). *)

open Sql_ast

exception Timeout

type result = {
  layout : Expr_eval.layout;
  rows : Value.t array list; (* in order *)
}

let column_names r = Array.to_list (Array.map snd r.layout)

(* ------------------------------------------------------------------ *)
(* Timeout bookkeeping                                                 *)
(* ------------------------------------------------------------------ *)

type ticker = { deadline : float option; mutable ops : int }

let tick t =
  t.ops <- t.ops + 1;
  if t.ops land 8191 = 0 then
    match t.deadline with
    | Some d when Unix.gettimeofday () > d -> raise Timeout
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let table_layout table alias : Expr_eval.layout =
  let schema = Table.schema table in
  Array.init (Schema.arity schema) (fun i -> (Some alias, Schema.column schema i))

let concat_layout (a : Expr_eval.layout) (b : Expr_eval.layout) : Expr_eval.layout =
  Array.append a b

let null_row n = Array.make n Value.Null

let concat_rows a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) Value.Null in
  Array.blit a 0 r 0 la;
  Array.blit b 0 r la lb;
  r

(* A hashable key for DISTINCT / hash joins: lists of values. *)
module Key = struct
  type t = Value.t list
  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash l = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 l
end

module KeyTbl = Hashtbl.Make (Key)

(* ------------------------------------------------------------------ *)
(* Plan interpretation                                                 *)
(* ------------------------------------------------------------------ *)

let rec exec_plan db ticker (plan : Planner.plan) : result =
  match plan with
  | Planner.Empty_row -> { layout = [||]; rows = [ [||] ] }
  | Planner.Scan { table; alias; filter } ->
    let t = Database.find_exn db table in
    let layout = table_layout t alias in
    let keep =
      match filter with
      | Some e -> Expr_eval.compile_pred layout e
      | None -> fun _ -> true
    in
    let acc = ref [] in
    Table.iter
      (fun _ row ->
        tick ticker;
        if keep row then acc := row :: !acc)
      t;
    { layout; rows = List.rev !acc }
  | Planner.Index_lookup { table; alias; col; keys; filter } ->
    let t = Database.find_exn db table in
    let layout = table_layout t alias in
    let pos = Schema.position_exn (Table.schema t) col in
    let keep =
      match filter with
      | Some e -> Expr_eval.compile_pred layout e
      | None -> fun _ -> true
    in
    let acc = ref [] in
    List.iter
      (fun key ->
        List.iter
          (fun rid ->
            tick ticker;
            let row = Table.get t rid in
            if keep row then acc := row :: !acc)
          (Table.lookup t pos key))
      keys;
    { layout; rows = !acc }
  | Planner.Values_rows { rows; alias; cols } ->
    let layout =
      Array.of_list (List.map (fun c -> (Some alias, c)) cols)
    in
    let rows =
      List.map
        (fun exprs ->
          Array.of_list (List.map (fun e -> Expr_eval.eval_const e) exprs))
        rows
    in
    { layout; rows }
  | Planner.Subplan { plan; alias } ->
    let r = exec_plan db ticker plan in
    { r with layout = Array.map (fun (_, n) -> (Some alias, n)) r.layout }
  | Planner.Inl_join { outer; table; alias; col; key; kind; residual } ->
    let o = exec_plan db ticker outer in
    let t = Database.find_exn db table in
    let inner_layout = table_layout t alias in
    let layout = concat_layout o.layout inner_layout in
    let pos = Schema.position_exn (Table.schema t) col in
    let key_fn = Expr_eval.compile o.layout key in
    let keep =
      match residual with
      | Some e -> Expr_eval.compile_pred layout e
      | None -> fun _ -> true
    in
    let inner_arity = Array.length inner_layout in
    let acc = ref [] in
    List.iter
      (fun orow ->
        let k = key_fn orow in
        let matched = ref false in
        if not (Value.is_null k) then
          List.iter
            (fun rid ->
              tick ticker;
              let row = concat_rows orow (Table.get t rid) in
              if keep row then begin
                matched := true;
                acc := row :: !acc
              end)
            (Table.lookup t pos k);
        if (not !matched) && kind = Left_outer then
          acc := concat_rows orow (null_row inner_arity) :: !acc)
      o.rows;
    { layout; rows = List.rev !acc }
  | Planner.Hash_join { left; right; left_keys; right_keys; kind; residual } ->
    let l = exec_plan db ticker left in
    let r = exec_plan db ticker right in
    let layout = concat_layout l.layout r.layout in
    let lkey_fns = List.map (Expr_eval.compile l.layout) left_keys in
    let rkey_fns = List.map (Expr_eval.compile r.layout) right_keys in
    let keep =
      match residual with
      | Some e -> Expr_eval.compile_pred layout e
      | None -> fun _ -> true
    in
    let index = KeyTbl.create (max 16 (List.length r.rows)) in
    List.iter
      (fun rrow ->
        tick ticker;
        let k = List.map (fun f -> f rrow) rkey_fns in
        if not (List.exists Value.is_null k) then
          KeyTbl.replace index k
            (rrow :: (try KeyTbl.find index k with Not_found -> [])))
      r.rows;
    let r_arity = Array.length r.layout in
    let acc = ref [] in
    List.iter
      (fun lrow ->
        let k = List.map (fun f -> f lrow) lkey_fns in
        let matches =
          if List.exists Value.is_null k then []
          else try KeyTbl.find index k with Not_found -> []
        in
        let matched = ref false in
        List.iter
          (fun rrow ->
            tick ticker;
            let row = concat_rows lrow rrow in
            if keep row then begin
              matched := true;
              acc := row :: !acc
            end)
          (List.rev matches);
        if (not !matched) && kind = Left_outer then
          acc := concat_rows lrow (null_row r_arity) :: !acc)
      l.rows;
    { layout; rows = List.rev !acc }
  | Planner.Nl_join { left; right; kind; cond } ->
    let l = exec_plan db ticker left in
    let r = exec_plan db ticker right in
    let layout = concat_layout l.layout r.layout in
    let keep =
      match cond with
      | Some e -> Expr_eval.compile_pred layout e
      | None -> fun _ -> true
    in
    let r_arity = Array.length r.layout in
    let acc = ref [] in
    List.iter
      (fun lrow ->
        let matched = ref false in
        List.iter
          (fun rrow ->
            tick ticker;
            let row = concat_rows lrow rrow in
            if keep row then begin
              matched := true;
              acc := row :: !acc
            end)
          r.rows;
        if (not !matched) && kind = Left_outer then
          acc := concat_rows lrow (null_row r_arity) :: !acc)
      l.rows;
    { layout; rows = List.rev !acc }
  | Planner.Values_join { outer; rows; alias; cols } ->
    let o = exec_plan db ticker outer in
    let vals_layout =
      Array.of_list (List.map (fun c -> (Some alias, c)) cols)
    in
    let layout = concat_layout o.layout vals_layout in
    (* Row expressions may reference outer columns (lateral). *)
    let compiled =
      List.map (fun exprs -> List.map (Expr_eval.compile o.layout) exprs) rows
    in
    let acc = ref [] in
    List.iter
      (fun orow ->
        List.iter
          (fun fns ->
            tick ticker;
            let vrow = Array.of_list (List.map (fun f -> f orow) fns) in
            acc := concat_rows orow vrow :: !acc)
          compiled)
      o.rows;
    { layout; rows = List.rev !acc }
  | Planner.Filter (p, e) ->
    let r = exec_plan db ticker p in
    let keep = Expr_eval.compile_pred r.layout e in
    { r with
      rows =
        List.filter
          (fun row ->
            tick ticker;
            keep row)
          r.rows }
  | Planner.Project { input; items; distinct; order_by; limit; offset } ->
    let r = exec_plan db ticker input in
    let fns = List.map (fun (e, _) -> Expr_eval.compile r.layout e) items in
    let out_layout =
      Array.of_list (List.map (fun (_, name) -> (None, name)) items)
    in
    (* Keep (input, output) row pairs through DISTINCT so ORDER BY can
       reference either input columns (e.g. "R.v_yr") or output aliases
       (e.g. "yr"); SQL applies DISTINCT before ORDER BY. *)
    let pairs =
      List.map
        (fun row ->
          tick ticker;
          (row, Array.of_list (List.map (fun f -> f row) fns)))
        r.rows
    in
    let pairs =
      if distinct then begin
        let seen = KeyTbl.create 64 in
        List.filter
          (fun (_, out) ->
            let k = Array.to_list out in
            if KeyTbl.mem seen k then false
            else begin
              KeyTbl.add seen k ();
              true
            end)
          pairs
      end
      else pairs
    in
    let pairs =
      match order_by with
      | [] -> pairs
      | obs ->
        (* Compile each sort key against the input layout when its
           columns resolve there, otherwise against the output layout. *)
        let sort_fns =
          List.map
            (fun { sort_expr; asc } ->
              match Expr_eval.compile r.layout sort_expr with
              | f -> ((fun (inp, _) -> f inp), asc)
              | exception Expr_eval.Unknown_column _ ->
                let f = Expr_eval.compile out_layout sort_expr in
                ((fun (_, out) -> f out), asc))
            obs
        in
        List.stable_sort
          (fun a b ->
            let rec cmp = function
              | [] -> 0
              | (f, asc) :: rest ->
                let c = Value.compare (f a) (f b) in
                if c <> 0 then if asc then c else -c else cmp rest
            in
            cmp sort_fns)
          pairs
    in
    let projected = List.map snd pairs in
    let projected =
      match offset with
      | Some n when n > 0 ->
        let rec drop n = function
          | l when n <= 0 -> l
          | [] -> []
          | _ :: tl -> drop (n - 1) tl
        in
        drop n projected
      | _ -> projected
    in
    let projected =
      match limit with
      | Some n ->
        let rec take n = function
          | [] -> []
          | _ when n <= 0 -> []
          | x :: tl -> x :: take (n - 1) tl
        in
        take n projected
      | None -> projected
    in
    { layout = out_layout; rows = projected }
  | Planner.Aggregate { input; keys; items; distinct; order_by; limit; offset } ->
    let r = exec_plan db ticker input in
    let key_fns = List.map (Expr_eval.compile r.layout) keys in
    (* One accumulator per output item. *)
    let module Acc = struct
      type t = {
        mutable count : int;
        mutable sum : float;
        mutable all_int : bool;
        mutable minimum : Value.t option;
        mutable maximum : Value.t option;
        seen : unit KeyTbl.t option;  (* DISTINCT tracking *)
      }
    end in
    let compiled_items =
      List.map
        (function
          | Planner.Ai_plain (e, name) ->
            `Plain (Expr_eval.compile r.layout e, name)
          | Planner.Ai_agg (fn, arg, dist, name) ->
            `Agg (fn, Option.map (Expr_eval.compile r.layout) arg, dist, name))
        items
    in
    let fresh_accs () =
      List.filter_map
        (function
          | `Plain _ -> None
          | `Agg (_, _, dist, _) ->
            Some
              { Acc.count = 0; sum = 0.0; all_int = true; minimum = None;
                maximum = None;
                seen = (if dist then Some (KeyTbl.create 8) else None) })
        compiled_items
      |> Array.of_list
    in
    (* num-aware ordering for MIN/MAX, consistent with comparisons *)
    let value_lt a b =
      match Value.as_float a, Value.as_float b with
      | Some x, Some y -> x < y
      | _ -> Value.compare a b < 0
    in
    let groups : (Value.t array * Acc.t array) KeyTbl.t = KeyTbl.create 64 in
    let order = ref [] in
    List.iter
      (fun row ->
        tick ticker;
        let key = List.map (fun f -> f row) key_fns in
        let _, accs =
          try KeyTbl.find groups key
          with Not_found ->
            let entry = (row, fresh_accs ()) in
            KeyTbl.add groups key entry;
            order := key :: !order;
            entry
        in
        let ai = ref 0 in
        List.iter
          (function
            | `Plain _ -> ()
            | `Agg (_, arg, _, _) ->
              let acc = accs.(!ai) in
              incr ai;
              let v = match arg with None -> Value.Bool true | Some f -> f row in
              let counted =
                match arg with
                | None -> true (* count-star counts every row *)
                | Some _ -> not (Value.is_null v)
              in
              if counted then begin
                let fresh =
                  match acc.Acc.seen with
                  | None -> true
                  | Some seen ->
                    if KeyTbl.mem seen [ v ] then false
                    else begin
                      KeyTbl.add seen [ v ] ();
                      true
                    end
                in
                if fresh then begin
                  acc.Acc.count <- acc.Acc.count + 1;
                  (match Value.as_float v with
                   | Some x ->
                     acc.Acc.sum <- acc.Acc.sum +. x;
                     (match v with Value.Int _ -> () | _ -> acc.Acc.all_int <- false)
                   | None -> ());
                  (match acc.Acc.minimum with
                   | None -> acc.Acc.minimum <- Some v
                   | Some m -> if value_lt v m then acc.Acc.minimum <- Some v);
                  match acc.Acc.maximum with
                  | None -> acc.Acc.maximum <- Some v
                  | Some m -> if value_lt m v then acc.Acc.maximum <- Some v
                end
              end)
          compiled_items)
      r.rows;
    (* SQL: no GROUP BY and no rows still yields one (empty) group. *)
    if keys = [] && KeyTbl.length groups = 0 then begin
      KeyTbl.add groups [] (null_row 0, fresh_accs ());
      order := [ [] ]
    end;
    let out_layout =
      Array.of_list
        (List.map
           (function `Plain (_, n) -> (None, n) | `Agg (_, _, _, n) -> (None, n))
           compiled_items)
    in
    let finish (first_row, accs) =
      let ai = ref 0 in
      Array.of_list
        (List.map
           (function
             | `Plain (f, _) ->
               if Array.length first_row = 0 then Value.Null else f first_row
             | `Agg (fn, _, _, _) ->
               let acc = accs.(!ai) in
               incr ai;
               (match (fn : Sql_ast.agg_fun) with
                | Sql_ast.A_count -> Value.Int acc.Acc.count
                | Sql_ast.A_sum ->
                  if acc.Acc.count = 0 then Value.Int 0
                  else if acc.Acc.all_int then Value.Int (int_of_float acc.Acc.sum)
                  else Value.Real acc.Acc.sum
                | Sql_ast.A_avg ->
                  if acc.Acc.count = 0 then Value.Null
                  else Value.Real (acc.Acc.sum /. float_of_int acc.Acc.count)
                | Sql_ast.A_min -> Option.value ~default:Value.Null acc.Acc.minimum
                | Sql_ast.A_max -> Option.value ~default:Value.Null acc.Acc.maximum))
           compiled_items)
    in
    let rows = List.rev_map (fun key -> finish (KeyTbl.find groups key)) !order in
    (* Distinct / order / limit over the aggregated output. *)
    let rows =
      if distinct then begin
        let seen = KeyTbl.create 16 in
        List.filter
          (fun row ->
            let k = Array.to_list row in
            if KeyTbl.mem seen k then false
            else begin
              KeyTbl.add seen k ();
              true
            end)
          rows
      end
      else rows
    in
    let rows =
      match order_by with
      | [] -> rows
      | obs ->
        let sort_fns =
          List.map
            (fun { sort_expr; asc } -> (Expr_eval.compile out_layout sort_expr, asc))
            obs
        in
        List.stable_sort
          (fun a b ->
            let rec cmp = function
              | [] -> 0
              | (f, asc) :: rest ->
                let c = Value.compare (f a) (f b) in
                if c <> 0 then if asc then c else -c else cmp rest
            in
            cmp sort_fns)
          rows
    in
    let rows =
      match offset with
      | Some n when n > 0 ->
        let rec drop n = function
          | l when n <= 0 -> l
          | [] -> []
          | _ :: tl -> drop (n - 1) tl
        in
        drop n rows
      | _ -> rows
    in
    let rows =
      match limit with
      | Some n ->
        let rec take n = function
          | [] -> []
          | _ when n <= 0 -> []
          | x :: tl -> x :: take (n - 1) tl
        in
        take n rows
      | None -> rows
    in
    { layout = out_layout; rows }
  | Planner.Union_plan { all; parts } ->
    let results = List.map (exec_plan db ticker) parts in
    (match results with
     | [] -> { layout = [||]; rows = [] }
     | first :: _ ->
       let rows = List.concat_map (fun r -> r.rows) results in
       let rows =
         if all then rows
         else begin
           let seen = KeyTbl.create 64 in
           List.filter
             (fun row ->
               tick ticker;
               let k = Array.to_list row in
               if KeyTbl.mem seen k then false
               else begin
                 KeyTbl.add seen k ();
                 true
               end)
             rows
         end
       in
       { layout = first.layout; rows })

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

let materialize name (r : result) : Table.t =
  let schema = Schema.make (column_names r) in
  let t = Table.create name schema in
  List.iter (fun row -> ignore (Table.insert t (Array.copy row))) r.rows;
  t

(** Run a full statement: materialize each CTE in order into an overlay
    database, then evaluate the body. [timeout] is in seconds of wall
    time for the whole statement. *)
let run ?timeout db (stmt : stmt) : result =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let ticker = { deadline; ops = 0 } in
  let scope = Database.overlay db in
  List.iter
    (fun (name, q) ->
      let plan = Planner.plan_query scope q in
      let r = exec_plan scope ticker plan in
      Database.add_table scope (materialize name r))
    stmt.ctes;
  let plan = Planner.plan_query scope stmt.body in
  exec_plan scope ticker plan

(** Explain: the physical plans of each CTE and the body, as text. *)
let explain db (stmt : stmt) : string =
  let buf = Buffer.create 512 in
  let scope = Database.overlay db in
  List.iter
    (fun (name, q) ->
      Buffer.add_string buf ("CTE " ^ name ^ ":\n");
      let plan = Planner.plan_query scope q in
      Buffer.add_string buf (Planner.plan_to_string plan);
      (* Register an empty table so later CTEs/body resolve the name. *)
      Database.add_table scope (Table.create name (Schema.make [])))
    stmt.ctes;
  Buffer.add_string buf "body:\n";
  Buffer.add_string buf (Planner.plan_to_string (Planner.plan_query scope stmt.body));
  Buffer.contents buf
