test/test_aggregates.ml: Alcotest Ast Db2rdf Helpers List Parser Printf Rdf Ref_eval Sparql Workloads
