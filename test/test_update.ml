(** Tests for update support (the paper's future-work item on insertion
    and update performance): deletion across every store, with the
    reference graph as oracle. *)

open Db2rdf

let term pfx i = Rdf.Term.iri (Printf.sprintf "%s%d" pfx i)

let triple (s, p, o) = Rdf.Triple.make (term "s" s) (term "p" p) (term "o" o)

let test_graph_remove () =
  let g = Rdf.Graph.create () in
  let t1 = triple (1, 1, 1) and t2 = triple (1, 1, 2) in
  Rdf.Graph.add g t1;
  Rdf.Graph.add g t2;
  Rdf.Graph.remove g t1;
  Alcotest.(check int) "size" 1 (Rdf.Graph.size g);
  Alcotest.(check bool) "t1 gone" false (Rdf.Graph.mem g t1);
  Alcotest.(check bool) "t2 kept" true (Rdf.Graph.mem g t2);
  Rdf.Graph.remove g t1;
  Alcotest.(check int) "remove idempotent" 1 (Rdf.Graph.size g)

let test_table_delete_row () =
  let t = Relsql.Table.create "t" (Relsql.Schema.make [ "k" ]) in
  Relsql.Table.create_index_on t "k";
  let r0 = Relsql.Table.insert t [| Relsql.Value.Int 1 |] in
  let _r1 = Relsql.Table.insert t [| Relsql.Value.Int 1 |] in
  Relsql.Table.delete_row t r0;
  Alcotest.(check int) "live count" 1 (Relsql.Table.row_count t);
  Alcotest.(check int) "index updated" 1
    (Array.length (Relsql.Table.lookup t 0 (Relsql.Value.Int 1)));
  (* scans skip tombstones *)
  let seen = ref 0 in
  Relsql.Table.iter (fun _ _ -> incr seen) t;
  Alcotest.(check int) "iter skips dead" 1 !seen

let test_loader_delete_single_valued () =
  let store = Loader.create ~layout:(Layout.make ~dph_cols:4 ~rph_cols:4) () in
  let t1 = triple (1, 1, 1) and t2 = triple (1, 2, 2) in
  Loader.load store [ t1; t2 ];
  Loader.delete store t1;
  Alcotest.(check int) "loaded count" 1 (Loader.triples_loaded store);
  (* Re-inserting after delete works. *)
  Loader.insert store t1;
  Alcotest.(check int) "re-insert" 2 (Loader.triples_loaded store)

let test_loader_delete_multivalued () =
  let store = Loader.create ~layout:(Layout.make ~dph_cols:4 ~rph_cols:4) () in
  (* three values for the same (s, p) *)
  let ts = List.map (fun o -> triple (1, 1, o)) [ 1; 2; 3 ] in
  Loader.load store ts;
  Loader.delete store (triple (1, 1, 2));
  let db = Loader.database store in
  let ds = Relsql.Database.find_exn db "DS" in
  Alcotest.(check int) "one DS element removed" 2 (Relsql.Table.row_count ds);
  (* delete the rest; the primary cell must clear *)
  Loader.delete store (triple (1, 1, 1));
  Loader.delete store (triple (1, 1, 3));
  Alcotest.(check int) "DS empty" 0 (Relsql.Table.row_count ds);
  Alcotest.(check int) "nothing loaded" 0 (Loader.triples_loaded store)

(** End-to-end: load, delete a random subset, compare every store
    against the oracle graph on a probe query. *)
let delete_equivalence =
  QCheck.Test.make ~name:"stores ≡ oracle after random deletions" ~count:40
    QCheck.(
      make
        Gen.(
          pair
            (list_size (int_range 5 60)
               (triple (int_range 0 8) (int_range 0 3) (int_range 0 8)))
            (list_size (int_range 0 30)
               (triple (int_range 0 8) (int_range 0 3) (int_range 0 8)))))
    (fun (to_load, to_delete) ->
      let load_triples = List.map triple to_load in
      let delete_triples = List.map triple to_delete in
      let g = Rdf.Graph.create () in
      List.iter (Rdf.Graph.add g) load_triples;
      List.iter (Rdf.Graph.remove g) delete_triples;
      let q =
        Sparql.Parser.parse
          "SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s <p0> ?x }"
      in
      let oracle = Sparql.Ref_eval.eval g q in
      let stores =
        let e = Engine.create ~layout:(Layout.make ~dph_cols:3 ~rph_cols:3) () in
        let ts = Triple_store.create () in
        let vs = Vertical_store.create () in
        let ns = Native_store.create () in
        [ Engine.to_store e; Triple_store.to_store ts; Vertical_store.to_store vs;
          Native_store.to_store ns ]
      in
      List.for_all
        (fun (store : Store.t) ->
          store.Store.load load_triples;
          store.Store.delete delete_triples;
          Sparql.Ref_eval.equal_results oracle (store.Store.query q))
        stores)

let test_stats_unrecord () =
  let stats = Dataset_stats.create () in
  Dataset_stats.record stats ~s:1 ~p:2 ~o:3;
  Dataset_stats.record stats ~s:1 ~p:2 ~o:4;
  Dataset_stats.unrecord stats ~s:1 ~p:2 ~o:3;
  Alcotest.(check int) "total" 1 (Dataset_stats.total stats);
  Alcotest.(check (option int)) "subject count" (Some 1)
    (Dataset_stats.subject_frequency stats 1);
  Alcotest.(check (option int)) "object gone" None
    (Dataset_stats.object_frequency stats 3)

let suite =
  [ Alcotest.test_case "graph remove" `Quick test_graph_remove;
    Alcotest.test_case "table delete_row" `Quick test_table_delete_row;
    Alcotest.test_case "loader delete (single-valued)" `Quick
      test_loader_delete_single_valued;
    Alcotest.test_case "loader delete (multi-valued)" `Quick
      test_loader_delete_multivalued;
    Alcotest.test_case "stats unrecord" `Quick test_stats_unrecord;
    QCheck_alcotest.to_alcotest delete_equivalence ]
