(** Dataset statistics [S] (Section 3.1), the input to the cost function
    {!Cost.tmc}: total triple count, average triples per subject and per
    object, and per-constant frequencies. The paper keeps "top-k URIs or
    literals"; we keep exact counts up to a configurable number of
    distinct constants and fall back to the averages beyond it, which
    preserves the behaviour that matters (frequent constants get exact
    costs). Per-predicate counts are also kept — the baseline
    translators use them for selectivity ordering. *)

module IntTbl = Hashtbl.Make (struct
  type t = int
  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type t = {
  mutable total_triples : int;
  subj_count : int IntTbl.t;  (** subject id -> #triples *)
  obj_count : int IntTbl.t;  (** object id -> #triples *)
  pred_count : int IntTbl.t;  (** predicate id -> #triples *)
  pred_subjects : int IntTbl.t;  (** predicate id -> distinct subjects *)
  pred_objects : int IntTbl.t;  (** predicate id -> distinct objects *)
  ps_seen : (int * int, unit) Hashtbl.t;
  po_seen : (int * int, unit) Hashtbl.t;
  top_k : int;
  mutable cs_cache : (int * (int array * int) array) option;
      (** memoized characteristic sets, keyed by the merge budget;
          invalidated by {!record}/{!unrecord} *)
}

let create ?(top_k = 1_000_000) () =
  {
    total_triples = 0;
    subj_count = IntTbl.create 1024;
    obj_count = IntTbl.create 1024;
    pred_count = IntTbl.create 64;
    pred_subjects = IntTbl.create 64;
    pred_objects = IntTbl.create 64;
    ps_seen = Hashtbl.create 1024;
    po_seen = Hashtbl.create 1024;
    top_k;
    cs_cache = None;
  }

let bump tbl id =
  match IntTbl.find_opt tbl id with
  | Some n -> IntTbl.replace tbl id (n + 1)
  | None -> IntTbl.add tbl id 1

(** Record one triple (by dictionary ids). *)
let record t ~s ~p ~o =
  t.cs_cache <- None;
  t.total_triples <- t.total_triples + 1;
  bump t.subj_count s;
  bump t.pred_count p;
  bump t.obj_count o;
  if not (Hashtbl.mem t.ps_seen (p, s)) then begin
    Hashtbl.add t.ps_seen (p, s) ();
    bump t.pred_subjects p
  end;
  if not (Hashtbl.mem t.po_seen (p, o)) then begin
    Hashtbl.add t.po_seen (p, o) ();
    bump t.pred_objects p
  end

(** Undo one {!record} (used by deletion). The distinct-entity sets
    behind the per-predicate fan-out averages are not shrunk — they
    remain safe over-approximations, which only perturbs cost estimates,
    never correctness. *)
let unrecord t ~s ~p ~o =
  let drop tbl id =
    match IntTbl.find_opt tbl id with
    | Some n when n > 1 -> IntTbl.replace tbl id (n - 1)
    | Some _ -> IntTbl.remove tbl id
    | None -> ()
  in
  t.cs_cache <- None;
  if t.total_triples > 0 then t.total_triples <- t.total_triples - 1;
  drop t.subj_count s;
  drop t.pred_count p;
  drop t.obj_count o

(** Has [s] ever been recorded as a subject of predicate [p]? The
    membership set is never shrunk by {!unrecord}, so after deletes it
    is a safe over-approximation — semi-join reductions built from it
    keep supersets of the contributing rows, never drop one. *)
let subject_has_pred t ~p ~s = Hashtbl.mem t.ps_seen (p, s)

(** Has [o] ever been recorded as an object of predicate [p]? Same
    over-approximation guarantee as {!subject_has_pred}. *)
let object_of_pred t ~p ~o = Hashtbl.mem t.po_seen (p, o)

(** Distinct subjects (resp. objects) ever seen under a predicate. *)
let predicate_subjects t id = IntTbl.find_opt t.pred_subjects id
let predicate_objects t id = IntTbl.find_opt t.pred_objects id

(** Every predicate id with a live triple count, sorted. *)
let predicates t =
  IntTbl.fold (fun k _ acc -> k :: acc) t.pred_count [] |> List.sort compare

let total t = t.total_triples
let distinct_subjects t = IntTbl.length t.subj_count
let distinct_objects t = IntTbl.length t.obj_count
let distinct_predicates t = IntTbl.length t.pred_count

let avg_triples_per_subject t =
  let n = distinct_subjects t in
  if n = 0 then 1.0 else float_of_int t.total_triples /. float_of_int n

let avg_triples_per_object t =
  let n = distinct_objects t in
  if n = 0 then 1.0 else float_of_int t.total_triples /. float_of_int n

(* The top-k limit models the paper's bounded statistics: constants
   beyond the k most frequent are estimated by the average. At bench
   scale we keep everything exact unless the caller lowers [top_k]. *)
let within_top_k t tbl id =
  if IntTbl.length tbl <= t.top_k then IntTbl.find_opt tbl id
  else
    match IntTbl.find_opt tbl id with
    | Some n when n > 1 -> Some n
    | _ -> None

(** Exact frequency of a constant as subject, when tracked. *)
let subject_frequency t id = within_top_k t t.subj_count id

(** Exact frequency of a constant as object, when tracked. *)
let object_frequency t id = within_top_k t t.obj_count id

(** Triples with the given predicate. *)
let predicate_frequency t id = IntTbl.find_opt t.pred_count id

(** Average triples per subject among subjects carrying predicate [id] —
    the expected fan-out of an access-by-subject on that predicate.
    Falls back to the global average for unseen predicates. *)
let avg_per_subject_of_pred t id =
  match IntTbl.find_opt t.pred_count id, IntTbl.find_opt t.pred_subjects id with
  | Some n, Some subjects when subjects > 0 ->
    float_of_int n /. float_of_int subjects
  | _ -> avg_triples_per_subject t

(** Average triples per object among objects of predicate [id]. *)
let avg_per_object_of_pred t id =
  match IntTbl.find_opt t.pred_count id, IntTbl.find_opt t.pred_objects id with
  | Some n, Some objects when objects > 0 ->
    float_of_int n /. float_of_int objects
  | _ -> avg_triples_per_object t

(* ------------------------------------------------------------------ *)
(* Characteristic sets                                                 *)
(* ------------------------------------------------------------------ *)

(* Is sorted int array [sub] a subset of sorted int array [sup]? *)
let subset_of (sub : int array) (sup : int array) =
  let ns = Array.length sub and np = Array.length sup in
  let rec go i j =
    if i = ns then true
    else if j = np then false
    else if sub.(i) = sup.(j) then go (i + 1) (j + 1)
    else if sub.(i) > sup.(j) then go i (j + 1)
    else false
  in
  go 0 0

(* Sorted-merge intersection size of two sorted int arrays. *)
let inter_size (a : int array) (b : int array) =
  let na = Array.length a and nb = Array.length b in
  let rec go i j acc =
    if i = na || j = nb then acc
    else if a.(i) = b.(j) then go (i + 1) (j + 1) (acc + 1)
    else if a.(i) < b.(j) then go (i + 1) j acc
    else go i (j + 1) acc
  in
  go 0 0 0

let union_sets (a : int array) (b : int array) =
  Array.of_list
    (List.sort_uniq compare (Array.to_list a @ Array.to_list b))

(** Characteristic sets (Section 3.1 statistics, extended): the
    partition of subjects by their exact predicate set, as
    [(sorted predicate ids, subject count)]. When the partition exceeds
    [budget] it is condensed hierarchically: the rarest set is folded
    into its cheapest superset (its subjects do satisfy the superset's
    subset queries), or — lacking any superset — into the set sharing
    the most predicates, widening that set to the union. Folding only
    ever moves counts upward to wider sets, so superset-counting
    estimates stay over-approximations. The whole construction is
    deterministic (all ties broken by count, then lexicographic predicate
    set), and memoized until the next {!record}/{!unrecord}. *)
let characteristic_sets ?(budget = 256) t =
  match t.cs_cache with
  | Some (b, sets) when b = budget -> sets
  | _ ->
    let budget = max 1 budget in
    (* subject -> predicate list, from the (p, s) distinct-pair set *)
    let preds_of = IntTbl.create (IntTbl.length t.subj_count) in
    Hashtbl.iter
      (fun (p, s) () ->
        IntTbl.replace preds_of s
          (p :: (try IntTbl.find preds_of s with Not_found -> [])))
      t.ps_seen;
    (* group subjects by (sorted) predicate set *)
    let groups : (int array, int) Hashtbl.t = Hashtbl.create 256 in
    IntTbl.iter
      (fun _ preds ->
        let key = Array.of_list (List.sort_uniq compare preds) in
        Hashtbl.replace groups key
          (1 + Option.value ~default:0 (Hashtbl.find_opt groups key)))
      preds_of;
    let sets =
      ref (Hashtbl.fold (fun k c acc -> (k, c) :: acc) groups []
           |> List.sort compare)
    in
    (* Deterministic pick order: smallest count first, then smallest
       predicate set lexicographically. *)
    let pick_order (k1, c1) (k2, c2) = compare (c1, k1) (c2, k2) in
    while List.length !sets > budget do
      let victim =
        List.fold_left
          (fun best s ->
            match best with
            | None -> Some s
            | Some b -> if pick_order s b < 0 then Some s else best)
          None !sets
        |> Option.get
      in
      let vk, vc = victim in
      let rest = List.filter (fun s -> s <> victim) !sets in
      let supersets =
        List.filter (fun (k, _) -> k <> vk && subset_of vk k) rest
      in
      let merged =
        match
          List.sort pick_order supersets
        with
        | (tk, _) :: _ ->
          (* fold into the cheapest superset *)
          List.map
            (fun (k, c) -> if k = tk then (k, c + vc) else (k, c))
            rest
        | [] ->
          (* no superset: widen the closest set to the union *)
          let target =
            List.fold_left
              (fun best ((k, _) as s) ->
                match best with
                | None -> Some s
                | Some ((bk, _) as b) ->
                  let si = inter_size vk k and bi = inter_size vk bk in
                  if si > bi || (si = bi && pick_order s b < 0) then Some s
                  else best)
              None rest
            |> Option.get
          in
          let tk, tc = target in
          (union_sets vk tk, tc + vc)
          :: List.filter (fun s -> s <> target) rest
      in
      (* re-group: widening can collide with an existing set *)
      let regroup = Hashtbl.create (List.length merged) in
      List.iter
        (fun (k, c) ->
          Hashtbl.replace regroup k
            (c + Option.value ~default:0 (Hashtbl.find_opt regroup k)))
        merged;
      sets :=
        Hashtbl.fold (fun k c acc -> (k, c) :: acc) regroup []
        |> List.sort compare
    done;
    let out = Array.of_list !sets in
    t.cs_cache <- Some (budget, out);
    out

(** Number of subjects whose characteristic set covers all of [preds] —
    the cardinality of the star's subject candidates. An
    over-approximation after budget merging. *)
let cs_subject_count ?budget t preds =
  let preds = Array.of_list (List.sort_uniq compare preds) in
  Array.fold_left
    (fun acc (k, c) -> if subset_of preds k then acc + c else acc)
    0
    (characteristic_sets ?budget t)
