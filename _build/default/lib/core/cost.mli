(** Access methods and the triple-method cost function TMC
    (Definition 3.1, Section 3.1.1).

    DB2RDF has subject and object indexes only (the [entry] columns), so
    the methods are access-by-subject [Acs], access-by-object [Aco] and
    full scan [Sc] — the method set M of the paper's example. *)

type access = Sc | Acs | Aco

val access_to_string : access -> string

(** [tmc stats dict tp m] estimates the rows touched when evaluating
    triple pattern [tp] with method [m]: a constant-entry lookup costs
    the constant's known frequency; a variable-entry lookup costs the
    predicate's fan-out on that side (average triples per subject or
    object); a scan costs the total triple count. *)
val tmc :
  Dataset_stats.t -> Rdf.Dictionary.t -> Sparql.Ast.triple_pat -> access -> float

(** Estimated matches of a triple pattern regardless of access path —
    the selectivity estimate the bottom-up baseline translators order
    BGPs by. *)
val triple_selectivity :
  Dataset_stats.t -> Rdf.Dictionary.t -> Sparql.Ast.triple_pat -> float
