(** Deterministic random distributions for the dataset generators.

    A splitmix-style PRNG seeded explicitly, so every workload is
    reproducible run to run (the benchmarks depend on that: result
    counts are compared across stores). *)

type rng = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed * 2654435761 + 1) }

(* splitmix64 step *)
let next_int64 r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int r bound =
  if bound <= 0 then invalid_arg "Dist.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 r) 1) (Int64.of_int bound))

(** Uniform float in [0, 1). *)
let float r =
  Int64.to_float (Int64.shift_right_logical (next_int64 r) 11)
  /. 9007199254740992.0

let bool r p = float r < p

(** Pick uniformly from a non-empty list. *)
let choose r xs = List.nth xs (int r (List.length xs))

(** Zipf sampler over ranks [0, n): probability of rank k proportional
    to 1/(k+1)^s. Precomputes the CDF; sampling is binary search. *)
type zipf = { cdf : float array }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (k + 1)) s);
    cdf.(k) <- !total
  done;
  Array.iteri (fun i v -> cdf.(i) <- v /. !total) cdf;
  { cdf }

let zipf_sample r z =
  let x = float r in
  let n = Array.length z.cdf in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if z.cdf.(mid) < x then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch 0 (n - 1)

(** Sample [k] distinct integers in [0, bound). *)
let distinct_ints r ~k ~bound =
  if k > bound then invalid_arg "Dist.distinct_ints";
  let seen = Hashtbl.create k in
  let rec go acc n =
    if n = 0 then acc
    else begin
      let x = int r bound in
      if Hashtbl.mem seen x then go acc n
      else begin
        Hashtbl.add seen x ();
        go (x :: acc) (n - 1)
      end
    end
  in
  go [] k
