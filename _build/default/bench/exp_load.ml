(** E12 — insertion, bulk load and update performance: the study the
    paper defers to future work ("we are preparing a study on insertion,
    bulk load and update performance"). Measures, per store:
    - bulk load throughput (triples/second, including any coloring pass);
    - incremental single-triple insertion rate into a warm store;
    - deletion rate. *)

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf
       "E12. Insertion / bulk load / update performance — %d triples (LUBM)"
       cfg.Harness.scale);
  let triples = Workloads.Lubm.generate ~scale:cfg.Harness.scale in
  let n = List.length triples in
  (* A later slice of the dataset arrives incrementally; an earlier
     slice is subsequently deleted. *)
  let incr_n = max 1 (n / 10) in
  let bulk = List.filteri (fun i _ -> i < n - incr_n) triples in
  let incremental = List.filteri (fun i _ -> i >= n - incr_n) triples in
  let to_delete = List.filteri (fun i _ -> i < incr_n) triples in
  let builders =
    [ ("DB2RDF (colored)",
       fun () ->
         let e, _, _ =
           Db2rdf.Engine.create_colored
             ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24) bulk
         in
         Db2rdf.Engine.to_store e);
      ("DB2RDF (hashed)",
       fun () ->
         let e =
           Db2rdf.Engine.create
             ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24) ()
         in
         Db2rdf.Engine.load e bulk;
         Db2rdf.Engine.to_store e);
      ("TripleStore",
       fun () ->
         let ts = Db2rdf.Triple_store.create () in
         Db2rdf.Triple_store.load ts bulk;
         Db2rdf.Triple_store.to_store ts);
      ("VertStore",
       fun () ->
         let vs = Db2rdf.Vertical_store.create () in
         Db2rdf.Vertical_store.load vs bulk;
         Db2rdf.Vertical_store.to_store vs);
      ("NativeRef",
       fun () ->
         let ns = Db2rdf.Native_store.create () in
         Db2rdf.Native_store.load ns bulk;
         Db2rdf.Native_store.to_store ns) ]
  in
  let ktps count seconds =
    if seconds <= 0.0 then "-"
    else Printf.sprintf "%.0f" (float_of_int count /. seconds /. 1000.0)
  in
  let rows =
    List.map
      (fun (name, build) ->
        let store, t_bulk = Harness.timed build in
        let (), t_incr =
          Harness.timed (fun () -> store.Db2rdf.Store.load incremental)
        in
        let (), t_del =
          Harness.timed (fun () -> store.Db2rdf.Store.delete to_delete)
        in
        [ name;
          ktps (List.length bulk) t_bulk;
          ktps (List.length incremental) t_incr;
          ktps (List.length to_delete) t_del ])
      builders
  in
  Harness.print_table
    [ "Store"; "bulk load (kt/s)"; "incr. insert (kt/s)"; "delete (kt/s)" ]
    rows
