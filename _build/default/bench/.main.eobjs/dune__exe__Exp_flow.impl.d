bench/exp_flow.ml: Db2rdf Harness List Printf Sparql String Workloads
