(** N-Triples parsing and serialization (the line-oriented RDF exchange
    syntax). Supports IRIs, blank nodes, plain / language-tagged /
    datatyped literals, the standard string escapes, and [#] comments. *)

exception Syntax_error of { line : int; message : string }

let error line message = raise (Syntax_error { line; message })

type cursor = { src : string; mutable pos : int; line : int }

(* ------------------------------------------------------------------ *)
(* UTF-8 codepoint encoding / decoding                                 *)
(* ------------------------------------------------------------------ *)

(* Append codepoint [cp] to [buf] as UTF-8. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

(* Decode the UTF-8 codepoint starting at [s.[i]]; returns
   [(codepoint, width)], or [None] on malformed input. *)
let utf8_decode s i =
  let n = String.length s in
  let byte k = Char.code s.[k] in
  let cont k = k < n && byte k land 0xC0 = 0x80 in
  let b0 = byte i in
  if b0 < 0x80 then Some (b0, 1)
  else if b0 land 0xE0 = 0xC0 && cont (i + 1) then
    Some (((b0 land 0x1F) lsl 6) lor (byte (i + 1) land 0x3F), 2)
  else if b0 land 0xF0 = 0xE0 && cont (i + 1) && cont (i + 2) then
    Some
      ( ((b0 land 0x0F) lsl 12)
        lor ((byte (i + 1) land 0x3F) lsl 6)
        lor (byte (i + 2) land 0x3F),
        3 )
  else if b0 land 0xF8 = 0xF0 && cont (i + 1) && cont (i + 2) && cont (i + 3)
  then
    Some
      ( ((b0 land 0x07) lsl 18)
        lor ((byte (i + 1) land 0x3F) lsl 12)
        lor ((byte (i + 2) land 0x3F) lsl 6)
        lor (byte (i + 3) land 0x3F),
        4 )
  else None

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c.line (Printf.sprintf "expected %C" ch)

let parse_iri c =
  expect c '<';
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some '>' ->
      let s = String.sub c.src start (c.pos - start) in
      advance c;
      s
    | Some _ ->
      advance c;
      go ()
    | None -> error c.line "unterminated IRI"
  in
  go ()

let parse_bnode c =
  expect c '_';
  expect c ':';
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ch
      when (ch >= 'a' && ch <= 'z')
           || (ch >= 'A' && ch <= 'Z')
           || (ch >= '0' && ch <= '9')
           || ch = '_' || ch = '-' ->
      advance c;
      go ()
    | _ -> String.sub c.src start (c.pos - start)
  in
  go ()

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c.line "unterminated literal"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some 'n' -> Buffer.add_char buf '\n'; advance c
       | Some 't' -> Buffer.add_char buf '\t'; advance c
       | Some 'r' -> Buffer.add_char buf '\r'; advance c
       | Some '"' -> Buffer.add_char buf '"'; advance c
       | Some '\\' -> Buffer.add_char buf '\\'; advance c
       | Some ('u' | 'U') ->
         (* \uXXXX / \UXXXXXXXX decode to the UTF-8 bytes of the
            codepoint, so a literal written with an escape is equal to
            the same literal written raw. *)
         let width = if peek c = Some 'u' then 4 else 8 in
         advance c;
         let cp = ref 0 in
         for _ = 1 to width do
           (match peek c with
            | Some ch ->
              let d =
                match ch with
                | '0' .. '9' -> Char.code ch - Char.code '0'
                | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
                | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
                | _ -> error c.line "bad hex digit in \\u escape"
              in
              cp := (!cp lsl 4) lor d
            | None -> error c.line "truncated \\u escape");
           advance c
         done;
         if !cp > 0x10FFFF then error c.line "\\U escape beyond U+10FFFF";
         add_utf8 buf !cp
       | _ -> error c.line "bad escape")
      ;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ()

let parse_literal c =
  let lex = parse_string_body c in
  match peek c with
  | Some '@' ->
    advance c;
    let start = c.pos in
    let rec go () =
      match peek c with
      | Some ch
        when (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
             || (ch >= '0' && ch <= '9') || ch = '-' ->
        advance c;
        go ()
      | _ -> ()
    in
    go ();
    Term.lang_lit lex (String.sub c.src start (c.pos - start))
  | Some '^' ->
    advance c;
    expect c '^';
    let dt = parse_iri c in
    Term.typed_lit lex dt
  | _ -> Term.lit lex

let parse_term c =
  skip_ws c;
  match peek c with
  | Some '<' -> Term.Iri (parse_iri c)
  | Some '_' -> Term.Bnode (parse_bnode c)
  | Some '"' -> parse_literal c
  | Some ch -> error c.line (Printf.sprintf "unexpected %C" ch)
  | None -> error c.line "unexpected end of line"

(** Parse one N-Triples line; [None] for blank and comment lines. *)
let parse_line ?(line = 0) (text : string) : Triple.t option =
  let c = { src = text; pos = 0; line } in
  skip_ws c;
  match peek c with
  | None -> None
  | Some '#' -> None
  | _ ->
    let s = parse_term c in
    let p = parse_term c in
    let o = parse_term c in
    skip_ws c;
    expect c '.';
    skip_ws c;
    (match peek c with
     | None -> ()
     | Some '#' -> ()
     | Some _ -> error c.line "trailing characters after '.'");
    Some (Triple.make s p o)

(** Parse a whole document, calling [f] on each triple. *)
let parse_string f (doc : string) =
  let lines = String.split_on_char '\n' doc in
  List.iteri
    (fun i text ->
      match parse_line ~line:(i + 1) text with
      | Some t -> f t
      | None -> ())
    lines

let parse_file f path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line = ref 0 in
      try
        while true do
          incr line;
          let text = input_line ic in
          match parse_line ~line:!line text with
          | Some t -> f t
          | None -> ()
        done
      with End_of_file -> ())

(* ------------------------------------------------------------------ *)
(* Serialization (ASCII N-Triples: non-ASCII re-encoded as \u escapes) *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
     | '"' -> Buffer.add_string buf "\\\""; incr i
     | '\\' -> Buffer.add_string buf "\\\\"; incr i
     | '\n' -> Buffer.add_string buf "\\n"; incr i
     | '\r' -> Buffer.add_string buf "\\r"; incr i
     | '\t' -> Buffer.add_string buf "\\t"; incr i
     | c when c >= ' ' && c < '\x7f' -> Buffer.add_char buf c; incr i
     | c when c < ' ' || c = '\x7f' ->
       (* other control characters *)
       Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c));
       incr i
     | _ ->
       (match utf8_decode s !i with
        | Some (cp, w) ->
          if cp <= 0xFFFF then
            Buffer.add_string buf (Printf.sprintf "\\u%04X" cp)
          else Buffer.add_string buf (Printf.sprintf "\\U%08X" cp);
          i := !i + w
        | None ->
          (* Malformed UTF-8: keep the raw byte rather than lose data. *)
          Buffer.add_char buf s.[!i];
          incr i))
  done

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf s;
  Buffer.contents buf

(** N-Triples rendering of one term, with non-ASCII codepoints in
    literals re-encoded as [\uXXXX]/[\UXXXXXXXX] (so output is pure
    ASCII and [parse_line] round-trips it to an equal term). *)
let term_to_string (t : Term.t) =
  match t with
  | Term.Iri s -> "<" ^ s ^ ">"
  | Term.Bnode b -> "_:" ^ b
  | Term.Lit { lex; lang = Some l; _ } -> "\"" ^ escape lex ^ "\"@" ^ l
  | Term.Lit { lex; datatype = Some d; _ } -> "\"" ^ escape lex ^ "\"^^<" ^ d ^ ">"
  | Term.Lit { lex; _ } -> "\"" ^ escape lex ^ "\""

let triple_to_string (t : Triple.t) =
  Printf.sprintf "%s %s %s ." (term_to_string t.Triple.s)
    (term_to_string t.Triple.p) (term_to_string t.Triple.o)

let to_buffer buf triples =
  List.iter
    (fun t ->
      Buffer.add_string buf (triple_to_string t);
      Buffer.add_char buf '\n')
    triples

let to_string triples =
  let buf = Buffer.create 1024 in
  to_buffer buf triples;
  Buffer.contents buf

let write_file path triples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun t ->
          output_string oc (triple_to_string t);
          output_char oc '\n')
        triples)
