(** Graph coloring of the predicate interference graph (Section 2.2,
    Definition 2.3, and the empirical study of Section 2.3).

    Two predicates interfere when they co-occur on some entity (same
    subject for the direct relations, same object for the reverse ones);
    interfering predicates must get different columns or they will force
    spill rows. When the graph needs more colors than the relation has
    columns (the DBpedia case), the most frequent predicates keep their
    colors and the rest fall through to a composed hash mapping. *)

type result = {
  assignment : (string, int) Hashtbl.t;  (** predicate URI -> column *)
  colors_used : int;
  covered : int;  (** predicates that received a color *)
  total_predicates : int;
  covered_occurrences : int;
  total_occurrences : int;
}

(** Fraction of triple occurrences whose predicate is covered — the
    "Percent. Covered" columns of Table 4. *)
val coverage : result -> float

type graph = {
  preds : string array;
  vertex : (string, int) Hashtbl.t;
  adj : Set.Make(Int).t array;
  freq : int array;
}

val n_vertices : graph -> int
val degree : graph -> int -> int
val interferes : graph -> int -> int -> bool

(** Build the interference graph from an entity iterator: the callback
    receives each entity's predicate-URI list once. *)
val build_graph : ((string list -> unit) -> unit) -> graph

(** Interference of predicates co-occurring on a subject. *)
val direct_graph : Rdf.Triple.t list -> graph

(** Interference of predicates co-occurring on an object. *)
val reverse_graph : Rdf.Triple.t list -> graph

(** Both graphs from a single scan of the triples — identical to
    [(direct_graph ts, reverse_graph ts)] but without re-reading the
    input once per side. *)
val interference_graphs : Rdf.Triple.t list -> graph * graph

(** Greedy coloring in descending (degree, frequency) order; vertices
    needing a color beyond [max_colors] are left uncovered. *)
val color : ?max_colors:int -> graph -> result

(** No two interfering covered predicates share a color. *)
val valid : graph -> result -> bool

(** Deterministic sample of a fraction of the triples (the Section 2.3
    "color only 10% of the records" experiment). *)
val sample_triples : fraction:float -> Rdf.Triple.t list -> Rdf.Triple.t list

(** Predicate mapping from a coloring over width-[m] relations: colored
    predicates map to their color, everything else falls back to a
    2-hash composition. *)
val to_pred_map : m:int -> result -> Pred_map.t
