(** LUBM-like university workload (Guo, Pan & Heflin): the 18-predicate
    schema whose interference graph is fully colorable (Table 4 row 3),
    plus the 12 benchmark queries the paper runs (LQ1–LQ10, LQ13, LQ14)
    with OWL inference pre-expanded into UNIONs (Section 4.1), and the
    ontology those expansions derive from. *)

val ns : string

(** [u name] is the IRI string [ns ^ name]. *)
val u : string -> string

(** Generate roughly [scale] triples. Deterministic. *)
val generate : scale:int -> Rdf.Triple.t list

(** Direct subclass pairs (sub, super) of the LUBM class hierarchy. *)
val class_hierarchy : (string * string) list

(** Direct subproperty pairs (headOf ⊑ worksFor ⊑ memberOf; the degree
    properties ⊑ degreeFrom). *)
val property_hierarchy : (string * string) list

(** The ontology as an {!Sparql.Inference.ontology} (for automatic query
    expansion). *)
val ontology : unit -> Sparql.Inference.ontology

(** The same axioms as RDFS triples, for in-band ontologies. *)
val ontology_triples : unit -> Rdf.Triple.t list

(** LQ1–LQ10, LQ13, LQ14. *)
val queries : (string * string) list
