lib/core/layout.ml: Array Printf Relsql
