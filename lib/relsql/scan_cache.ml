(** A bounded LRU cache of materialized base-table scan results.

    Star-join SQL re-reads the same tables with the same fused
    filter/projection across queries (and across repeated runs of one
    query); when nothing changed, re-scanning is pure waste. An entry is
    keyed by the table's {e name and version} plus a fingerprint of the
    (filter, columns) pair, so the key itself encodes validity: any
    insert/update/delete bumps {!Table.version}, future scans compute a
    different key, and the stale entry simply ages out of the LRU — no
    clear-on-write hook to forget.

    Batches have linear ownership (the consumer mutates them in place),
    so the cache stores a frozen private copy on miss and hands out a
    fresh copy on hit. Both copies are row blits, which profiling shows
    is far cheaper than the predicate evaluation they displace.

    Reuses {!Plan_cache} for the LRU/counter machinery; like it, the
    cache is not domain-safe and belongs to the query-submitting
    domain (the executor consults it outside parallel sections only). *)

type t = { cache : Batch.t Plan_cache.t }

(** Results larger than this many cells are not cached: the cache
    trades a bounded amount of memory for scan time, and huge results
    would make "bounded" a lie under an entry-count LRU. *)
let max_cells = 1 lsl 20

let create ?(capacity = 32) () = { cache = Plan_cache.create ~capacity () }

(** Cache key for a scan of [table] at [version] with the given fused
    filter and column pruning. The (filter, cols) pair is fingerprinted
    by marshalling — {!Sql_ast.expr} is pure variant data, so equal
    predicates digest equally — keeping keys short and hashable. The
    scan's alias is deliberately excluded: self-joins scan the same
    table under different aliases, and the executor re-qualifies the
    cached layout on every hit. *)
let key ~table ~version ~(filter : Sql_ast.expr option)
    ~(cols : string list option) =
  Printf.sprintf "%s@%d#%s" table version
    (Digest.to_hex (Digest.string (Marshal.to_string (filter, cols) [])))

(** A fresh, privately-owned copy of the cached result, or [None]. *)
let find t k = Option.map Batch.copy (Plan_cache.find t.cache k)

(** Freeze a private copy of [b] under [k] (skipped above
    {!max_cells}). The caller keeps ownership of [b]. *)
let add t k (b : Batch.t) =
  if Batch.length b * max 1 (Batch.width b) <= max_cells then
    Plan_cache.add t.cache k (Batch.copy b)

let clear t = Plan_cache.clear t.cache
let stats t = Plan_cache.stats t.cache

let stats_to_string t =
  let s = stats t in
  Printf.sprintf "scan cache: %d hits, %d misses, %d entries"
    s.Plan_cache.hits s.Plan_cache.misses s.Plan_cache.entries
