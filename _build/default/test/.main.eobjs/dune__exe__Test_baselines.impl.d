test/test_baselines.ml: Alcotest Bottom_up Db2rdf Exec_tree Helpers List Native_store Rdf Relsql Sparql String Triple_store Vertical_store
