(** Reference SPARQL evaluator over {!Rdf.Graph}.

    Implements the standard bottom-up bindings semantics for the subset
    in {!Ast}: BGP join, group join, UNION as multiset union, OPTIONAL as
    left join, FILTER with error-as-false effective boolean values. It
    doubles as (a) the correctness oracle every relational store is
    property-tested against, and (b) the "native store" system in the
    cross-system benchmarks (standing in for a Jena-class engine). *)

open Ast

module VarMap = Map.Make (String)

(** A solution mapping: variable -> dictionary id. *)
type binding = int VarMap.t

type results = {
  vars : string list;  (** projected variables, in projection order *)
  rows : Rdf.Term.t option list list;
      (** one row per solution; [None] = unbound (OPTIONAL) *)
}

exception Timeout

(* Wall-clock deadline for the current evaluation (set by {!eval}),
   checked periodically inside triple matching. *)
let current_deadline : float option ref = ref None
let tick_counter = ref 0

let tick () =
  incr tick_counter;
  if !tick_counter land 8191 = 0 then
    match !current_deadline with
    | Some d when Unix.gettimeofday () > d -> raise Timeout
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Triple pattern matching                                             *)
(* ------------------------------------------------------------------ *)

let resolve_term_pat dict (b : binding) = function
  | Term t ->
    (match Rdf.Dictionary.find dict t with
     | Some id -> `Bound id
     | None -> `NoMatch)
  | Var v ->
    (match VarMap.find_opt v b with
     | Some id -> `Bound id
     | None -> `Free v)

(** Extend [b] with all matches of [tp] in [g]. *)
let match_triple g (b : binding) (tp : triple_pat) : binding list =
  let dict = Rdf.Graph.dictionary g in
  match
    ( resolve_term_pat dict b tp.tp_s,
      resolve_term_pat dict b tp.tp_p,
      resolve_term_pat dict b tp.tp_o )
  with
  | `NoMatch, _, _ | _, `NoMatch, _ | _, _, `NoMatch -> []
  | s, p, o ->
    let opt = function `Bound id -> Some id | `Free _ -> None | `NoMatch -> None in
    let acc = ref [] in
    Rdf.Graph.find_ids g ?s:(opt s) ?p:(opt p) ?o:(opt o)
      (fun (it : Rdf.Graph.id_triple) ->
        tick ();
        (* Bind free variables; repeated variables within the pattern
           must agree. *)
        let bind b pos id =
          match pos with
          | `Bound _ -> Some b
          | `Free v ->
            (match VarMap.find_opt v b with
             | Some existing -> if existing = id then Some b else None
             | None -> Some (VarMap.add v id b))
          | `NoMatch -> None
        in
        match bind b s it.s with
        | None -> ()
        | Some b ->
          (match bind b p it.p with
           | None -> ()
           | Some b ->
             (match bind b o it.o with
              | None -> ()
              | Some b -> acc := b :: !acc)))
      ;
    !acc

(* ------------------------------------------------------------------ *)
(* Filter expression evaluation                                        *)
(* ------------------------------------------------------------------ *)

type fvalue =
  | V_term of Rdf.Term.t
  | V_bool of bool
  | V_num of float
  | V_err

let term_numeric = Rdf.Term.as_number

let rec eval_expr dict (b : binding) = function
  | E_var v ->
    (match VarMap.find_opt v b with
     | Some id -> V_term (Rdf.Dictionary.term_of dict id)
     | None -> V_err)
  | E_const t -> V_term t
  | E_bound v -> V_bool (VarMap.mem v b)
  | E_not e ->
    (match ebv (eval_expr dict b e) with
     | Some x -> V_bool (not x)
     | None -> V_err)
  | E_and (a, b') ->
    (* SPARQL || / && treat errors like SQL unknown. *)
    let va = ebv (eval_expr dict b a) and vb = ebv (eval_expr dict b b') in
    (match va, vb with
     | Some false, _ | _, Some false -> V_bool false
     | Some true, Some true -> V_bool true
     | _ -> V_err)
  | E_or (a, b') ->
    let va = ebv (eval_expr dict b a) and vb = ebv (eval_expr dict b b') in
    (match va, vb with
     | Some true, _ | _, Some true -> V_bool true
     | Some false, Some false -> V_bool false
     | _ -> V_err)
  | E_cmp (op, a, b') ->
    let va = eval_expr dict b a and vb = eval_expr dict b b' in
    compare_values op va vb
  | E_regex (e, pattern) ->
    (match eval_expr dict b e with
     | V_term (Rdf.Term.Lit { lex; _ }) -> V_bool (contains lex pattern)
     | V_term (Rdf.Term.Iri s) -> V_bool (contains s pattern)
     | _ -> V_err)
  | E_arith (op, a, b') ->
    let num v =
      match v with
      | V_num n -> Some n
      | V_term t -> term_numeric t
      | V_bool _ | V_err -> None
    in
    (match num (eval_expr dict b a), num (eval_expr dict b b') with
     | Some x, Some y ->
       (match op with
        | Aadd -> V_num (x +. y)
        | Asub -> V_num (x -. y)
        | Amul -> V_num (x *. y)
        | Adiv -> if y = 0.0 then V_err else V_num (x /. y))
     | _ -> V_err)

(** Effective boolean value; [None] is an error. *)
and ebv = function
  | V_bool x -> Some x
  | V_num n -> Some (n <> 0.0)
  | V_term (Rdf.Term.Lit { lex; datatype = Some dt; _ })
    when dt = "http://www.w3.org/2001/XMLSchema#boolean" ->
    Some (lex = "true" || lex = "1")
  | V_term (Rdf.Term.Lit { lex; datatype = None; lang = None }) ->
    Some (lex <> "")
  | V_term t ->
    (match term_numeric t with Some n -> Some (n <> 0.0) | None -> None)
  | V_err -> None

and compare_values op a b =
  let num = function
    | V_num n -> Some n
    | V_term t -> term_numeric t
    | V_bool _ | V_err -> None
  in
  match a, b with
  | V_err, _ | _, V_err -> V_err
  | _ ->
    let c =
      match num a, num b with
      | Some x, Some y -> Some (Stdlib.compare x y)
      | _ ->
        (match a, b with
         | V_term x, V_term y ->
           Some (String.compare (Rdf.Term.to_string x) (Rdf.Term.to_string y))
         | V_bool x, V_bool y -> Some (Stdlib.compare x y)
         | _ -> None)
    in
    (match c with
     | None -> V_err
     | Some c ->
       let r =
         match op with
         | Ceq -> c = 0
         | Cneq -> c <> 0
         | Clt -> c < 0
         | Cleq -> c <= 0
         | Cgt -> c > 0
         | Cgeq -> c >= 0
       in
       V_bool r)

(** Naive substring containment, the semantics we give REGEX across all
    stores (sufficient for the benchmark workloads, and consistent so
    oracle comparisons are exact). *)
and contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else at (i + 1)
  in
  nn = 0 || at 0

let filter_passes dict b e =
  tick ();
  match ebv (eval_expr dict b e) with Some true -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Pattern evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(* Solution-mapping compatibility and merge (SPARQL algebra). The tick
   keeps the deadline honored on join-heavy patterns whose cost is in
   merging rather than triple matching. *)
let compatible (m1 : binding) (m2 : binding) =
  tick ();
  VarMap.for_all
    (fun v id ->
      match VarMap.find_opt v m1 with None -> true | Some id' -> id = id')
    m2

let merge_bindings (m1 : binding) (m2 : binding) =
  VarMap.union (fun _ a _ -> Some a) m1 m2

let rec eval_pattern g (sols : binding list) (p : pattern) : binding list =
  let dict = Rdf.Graph.dictionary g in
  match p with
  | Bgp tps ->
    List.fold_left
      (fun sols tp -> List.concat_map (fun b -> match_triple g b tp) sols)
      sols tps
  | Group elements ->
    (* Filters scope over the whole group: evaluate them last. *)
    let filters, others =
      List.partition (function Filter _ -> true | _ -> false) elements
    in
    let sols =
      List.fold_left
        (fun sols e ->
          match e with
          | Optional inner -> left_join g sols inner
          | other -> eval_pattern g sols other)
        sols others
    in
    List.fold_left
      (fun sols f ->
        match f with
        | Filter e -> List.filter (fun b -> filter_passes dict b e) sols
        | _ -> sols)
      sols filters
  | Union parts ->
    (* Join distributes over union, so seeding branches with the current
       solutions is exact. *)
    List.concat_map (fun part -> eval_pattern g sols part) parts
  | Optional inner -> left_join g sols inner
  | Filter e -> List.filter (fun b -> filter_passes dict b e) sols

(* Bottom-up LeftJoin (the W3C algebra): the optional side is evaluated
   independently, then merged with each solution by compatibility. This
   matters for non-well-designed patterns, where substitution semantics
   would differ; all stores implement the algebra, so the oracle must
   too. *)
and left_join g (sols : binding list) (inner : pattern) : binding list =
  let omega2 = eval_pattern g [ VarMap.empty ] inner in
  List.concat_map
    (fun m1 ->
      let exts =
        List.filter_map
          (fun m2 ->
            if compatible m1 m2 then Some (merge_bindings m1 m2) else None)
          omega2
      in
      if exts = [] then [ m1 ] else exts)
    sols

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let order_key dict (b : binding) (e : expr) =
  match eval_expr dict b e with
  | V_term t ->
    (match term_numeric t with
     | Some n -> (0, n, "")
     | None -> (1, 0.0, Rdf.Term.to_string t))
  | V_num n -> (0, n, "")
  | V_bool x -> (2, (if x then 1.0 else 0.0), "")
  | V_err -> (-1, 0.0, "")

(* ------------------------------------------------------------------ *)
(* Aggregation (SPARQL 1.1 subset; see {!Ast.aggregate})                *)
(* ------------------------------------------------------------------ *)

(** Group the solutions by the GROUP BY variables and compute each
    aggregate, producing one output row per group: grouped-variable
    terms first, then aggregate values rendered with
    {!Rdf.Term.of_number} (COUNT as an integer literal) — matching the
    convention of every relational store. *)
let aggregate_rows dict (q : query) (sols : binding list) :
  Rdf.Term.t option list list =
  let plain =
    match q.projection with
    | Select_vars vs -> vs
    | Select_star -> q.group_by
  in
  let groups : (int option list, binding list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun b ->
      let key = List.map (fun v -> VarMap.find_opt v b) q.group_by in
      match Hashtbl.find_opt groups key with
      | Some l -> l := b :: !l
      | None ->
        Hashtbl.add groups key (ref [ b ]);
        order := key :: !order)
    sols;
  (* A global aggregate over zero solutions still yields one row. *)
  if q.group_by = [] && Hashtbl.length groups = 0 then begin
    Hashtbl.add groups [] (ref []);
    order := [ [] ]
  end;
  let compute (members : binding list) (a : aggregate) : Rdf.Term.t option =
    let values =
      match a.agg_arg with
      | None -> List.map (fun _ -> None) members (* count-star markers *)
      | Some v ->
        List.filter_map
          (fun b -> Option.map (fun id -> Some id) (VarMap.find_opt v b))
          members
        |> List.map (fun x -> x)
    in
    let values =
      if a.agg_distinct then
        match a.agg_arg with
        | None -> values
        | Some _ -> List.sort_uniq compare values
      else values
    in
    match a.agg_fn with
    | Ag_count -> Some (Rdf.Term.int_lit (List.length values))
    | Ag_sum | Ag_avg | Ag_min | Ag_max ->
      let nums =
        List.filter_map
          (function
            | Some id -> term_numeric (Rdf.Dictionary.term_of dict id)
            | None -> None)
          values
      in
      let nums =
        (* DISTINCT over numeric aggregates dedupes the numeric value,
           matching SQL's SUM(DISTINCT num). *)
        if a.agg_distinct then List.sort_uniq compare nums else nums
      in
      (match a.agg_fn, nums with
       | Ag_sum, _ -> Some (Rdf.Term.of_number (List.fold_left ( +. ) 0.0 nums))
       | Ag_avg, [] -> None
       | Ag_avg, _ ->
         Some
           (Rdf.Term.of_number
              (List.fold_left ( +. ) 0.0 nums /. float_of_int (List.length nums)))
       | (Ag_min | Ag_max), [] -> None
       | Ag_min, n :: rest -> Some (Rdf.Term.of_number (List.fold_left min n rest))
       | Ag_max, n :: rest -> Some (Rdf.Term.of_number (List.fold_left max n rest))
       | Ag_count, _ -> assert false)
  in
  List.rev_map
    (fun key ->
      let members = List.rev !(Hashtbl.find groups key) in
      let first = match members with b :: _ -> b | [] -> VarMap.empty in
      List.map
        (fun v ->
          Option.map (Rdf.Dictionary.term_of dict) (VarMap.find_opt v first))
        plain
      @ List.map (compute members) q.aggregates)
    !order
  |> List.rev

let eval ?timeout g (q : query) : results =
  current_deadline :=
    Option.map (fun s -> Unix.gettimeofday () +. s) timeout;
  Fun.protect ~finally:(fun () -> current_deadline := None)
  @@ fun () ->
  let sols = eval_pattern g [ VarMap.empty ] q.where in
  let dict = Rdf.Graph.dictionary g in
  let sols =
    match q.order_by with
    | [] -> sols
    | conds ->
      List.stable_sort
        (fun a b ->
          let rec cmp = function
            | [] -> 0
            | { ord_expr; ord_asc } :: rest ->
              let ka = order_key dict a ord_expr and kb = order_key dict b ord_expr in
              let c = Stdlib.compare ka kb in
              if c <> 0 then if ord_asc then c else -c else cmp rest
          in
          cmp conds)
        sols
  in
  let vars = projected_vars q in
  let project b =
    List.map
      (fun v ->
        match VarMap.find_opt v b with
        | Some id -> Some (Rdf.Dictionary.term_of dict id)
        | None -> None)
      vars
  in
  let rows =
    if is_aggregate q then aggregate_rows dict q sols
    else List.map project sols
  in
  let rows =
    if q.distinct then begin
      let seen = Hashtbl.create 64 in
      List.filter
        (fun r ->
          if Hashtbl.mem seen r then false
          else begin
            Hashtbl.add seen r ();
            true
          end)
        rows
    end
    else rows
  in
  let rows =
    match q.offset with
    | Some n when n > 0 ->
      let rec drop n = function
        | l when n <= 0 -> l
        | [] -> []
        | _ :: tl -> drop (n - 1) tl
      in
      drop n rows
    | _ -> rows
  in
  let rows =
    match q.limit with
    | Some n ->
      let rec take n = function
        | [] -> []
        | _ when n <= 0 -> []
        | x :: tl -> x :: take (n - 1) tl
      in
      take n rows
    | None -> rows
  in
  { vars; rows }

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)
(* ------------------------------------------------------------------ *)

(** Apply a SPARQL UPDATE to the graph in place — the reference
    semantics the relational stores are diffed against. [DELETE WHERE]
    evaluates its pattern against the pre-update state, instantiates the
    same pattern as a template under every solution, and removes the
    resulting ground triples (collected first, removed after, so
    removal order cannot affect matching). *)
let apply_update g (u : Ast.update) : unit =
  match u with
  | Insert_data ts -> List.iter (Rdf.Graph.add g) ts
  | Delete_data ts -> List.iter (Rdf.Graph.remove g) ts
  | Delete_where tps ->
    let dict = Rdf.Graph.dictionary g in
    let sols = eval_pattern g [ VarMap.empty ] (Bgp tps) in
    let doomed =
      List.concat_map
        (fun b ->
          List.filter_map
            (fun (tp : triple_pat) ->
              let id = function
                | Ast.Var v -> VarMap.find_opt v b
                | Ast.Term t -> Rdf.Dictionary.find dict t
              in
              match (id tp.tp_s, id tp.tp_p, id tp.tp_o) with
              | Some s, Some p, Some o -> Some (s, p, o)
              | _ -> None)
            tps)
        sols
    in
    List.iter (fun (s, p, o) -> Rdf.Graph.remove_ids g s p o) doomed

(** Canonical form for comparing result multisets across stores: rows
    rendered as strings and sorted. *)
let canonical (r : results) : string list =
  let row_string row =
    String.concat "\t"
      (List.map
         (function Some t -> Rdf.Term.to_string t | None -> "")
         row)
  in
  List.sort String.compare (List.map row_string r.rows)

(** [equal_results a b] compares result multisets (order-insensitive
    unless the query ordered them — callers decide which to use). *)
let equal_results a b = canonical a = canonical b
