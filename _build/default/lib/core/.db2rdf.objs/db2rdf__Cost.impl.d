lib/core/cost.ml: Dataset_stats Rdf Sparql
