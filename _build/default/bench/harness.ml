(** Benchmark harness shared by every experiment: store construction,
    warm-cache timing (the paper's protocol: discard the first run,
    average the rest), outcome classification against an oracle count,
    and fixed-width table printing. *)

type config = {
  scale : int;  (** approximate triples per dataset *)
  runs : int;  (** timed runs after the warm-up run *)
  timeout : float;  (** per-query timeout in seconds (paper: 10 min) *)
  experiments : string list;  (** empty = all *)
}

let default_config = { scale = 30_000; runs = 3; timeout = 10.0; experiments = [] }

let parse_args () =
  let cfg = ref default_config in
  let specs =
    [ ("--scale", Arg.Int (fun s -> cfg := { !cfg with scale = s }),
       "N  approximate dataset size in triples (default 30000)");
      ("--runs", Arg.Int (fun r -> cfg := { !cfg with runs = r }),
       "N  timed runs per query after warm-up (default 3)");
      ("--timeout", Arg.Float (fun t -> cfg := { !cfg with timeout = t }),
       "S  per-query timeout in seconds (default 10)");
      ("-e", Arg.String (fun e -> cfg := { !cfg with experiments = e :: !cfg.experiments }),
       "NAME  run only this experiment (repeatable)") ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--scale N] [--runs N] [--timeout S] [-e experiment]...";
  !cfg

let enabled cfg name = cfg.experiments = [] || List.mem name cfg.experiments

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n%!" title

(* ------------------------------------------------------------------ *)
(* Store construction                                                  *)
(* ------------------------------------------------------------------ *)

type system = { sys_name : string; store : Db2rdf.Store.t; load_seconds : float }

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let build_db2rdf ?(name = "DB2RDF") ?(options = Db2rdf.Engine.default_options)
    triples =
  let (engine_store, _, _), load_seconds =
    timed (fun () ->
        Db2rdf.Engine.create_colored ~options
          ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24) triples)
  in
  { sys_name = name; store = Db2rdf.Engine.to_store ~name engine_store; load_seconds }

let build_db2rdf_naive triples =
  build_db2rdf ~name:"DB2RDF-naive"
    ~options:{ Db2rdf.Engine.optimize = false; merge = false; late_fuse = false }
    triples

let build_triple_store triples =
  let ts, load_seconds =
    timed (fun () ->
        let ts = Db2rdf.Triple_store.create () in
        Db2rdf.Triple_store.load ts triples;
        ts)
  in
  { sys_name = "TripleStore"; store = Db2rdf.Triple_store.to_store ts; load_seconds }

let build_vertical_store triples =
  let vs, load_seconds =
    timed (fun () ->
        let vs = Db2rdf.Vertical_store.create () in
        Db2rdf.Vertical_store.load vs triples;
        vs)
  in
  { sys_name = "VertStore"; store = Db2rdf.Vertical_store.to_store vs; load_seconds }

let build_native triples =
  let ns, load_seconds =
    timed (fun () ->
        let ns = Db2rdf.Native_store.create () in
        Db2rdf.Native_store.load ns triples;
        ns)
  in
  { sys_name = "NativeRef"; store = Db2rdf.Native_store.to_store ns; load_seconds }

(* ------------------------------------------------------------------ *)
(* Query measurement                                                   *)
(* ------------------------------------------------------------------ *)

type measurement = {
  m_query : string;
  m_system : string;
  m_outcome : [ `Complete of int | `Timeout | `Error of string | `Unsupported ];
  m_seconds : float;  (** mean wall-clock over timed runs; timeout value
                          when timed out *)
}

(** Measure one query on one system: one warm-up run, then [runs] timed
    runs, mean reported (the paper's warm-cache protocol). [expected]
    is the oracle row count; a differing count classifies as error. *)
let measure cfg ?expected (sys : system) qname (q : Sparql.Ast.query) : measurement =
  let run1 () = Db2rdf.Store.run ~timeout:cfg.timeout sys.store q in
  match run1 () with
  | Db2rdf.Store.Timed_out, _ ->
    { m_query = qname; m_system = sys.sys_name; m_outcome = `Timeout;
      m_seconds = cfg.timeout }
  | Db2rdf.Store.Unsupported _, _ ->
    { m_query = qname; m_system = sys.sys_name; m_outcome = `Unsupported;
      m_seconds = 0.0 }
  | Db2rdf.Store.Failed msg, _ ->
    { m_query = qname; m_system = sys.sys_name; m_outcome = `Error msg;
      m_seconds = 0.0 }
  | Db2rdf.Store.Complete first, _ ->
    let count = List.length first.Sparql.Ref_eval.rows in
    (match expected with
     | Some n when n <> count ->
       { m_query = qname; m_system = sys.sys_name;
         m_outcome = `Error (Printf.sprintf "expected %d rows, got %d" n count);
         m_seconds = 0.0 }
     | _ ->
       let total = ref 0.0 in
       let timed_out = ref false in
       for _ = 1 to cfg.runs do
         match run1 () with
         | Db2rdf.Store.Complete _, dt -> total := !total +. dt
         | _ -> timed_out := true
       done;
       if !timed_out then
         { m_query = qname; m_system = sys.sys_name; m_outcome = `Timeout;
           m_seconds = cfg.timeout }
       else
         { m_query = qname; m_system = sys.sys_name;
           m_outcome = `Complete count;
           m_seconds = !total /. float_of_int cfg.runs })

let outcome_cell (m : measurement) =
  match m.m_outcome with
  | `Complete _ -> Printf.sprintf "%8.1f" (m.m_seconds *. 1000.0)
  | `Timeout -> " timeout"
  | `Error _ -> "   error"
  | `Unsupported -> "  unsup."

(* ------------------------------------------------------------------ *)
(* Table printing                                                      *)
(* ------------------------------------------------------------------ *)

let print_row widths cells =
  List.iter2 (fun w c -> Printf.printf "%-*s" (w + 2) c) widths cells;
  print_newline ()

let print_table header rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  print_row widths header;
  print_row widths (List.map (fun w -> String.make w '-') widths);
  List.iter (print_row widths) rows;
  flush stdout
