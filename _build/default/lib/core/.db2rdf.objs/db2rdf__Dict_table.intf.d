lib/core/dict_table.mli: Rdf Relsql
