lib/relsql/sql_parser.ml: List Printf Sql_ast Sql_lexer Value
