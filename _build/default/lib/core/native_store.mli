(** The native in-memory store: {!Rdf.Graph} plus the reference
    evaluator. It stands in for a Jena-class native system in the
    cross-system benchmarks and doubles as the correctness oracle. *)

type t

val create : ?dict:Rdf.Dictionary.t -> unit -> t
val of_graph : Rdf.Graph.t -> t
val graph : t -> Rdf.Graph.t
val load : t -> Rdf.Triple.t list -> unit
val delete : t -> Rdf.Triple.t list -> unit

(** Raises {!Relsql.Executor.Timeout} on deadline expiry, aligning its
    outcome classification with the relational stores'. *)
val query : ?timeout:float -> t -> Sparql.Ast.query -> Sparql.Ref_eval.results

val to_store : ?name:string -> t -> Store.t
