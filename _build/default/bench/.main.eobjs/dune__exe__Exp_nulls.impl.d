bench/exp_nulls.ml: Db2rdf Harness Hashtbl List Printf Rdf Sparql
