(** Insertion into the DB2RDF schema: predicate-to-column placement,
    spill rows, and multi-value (lid) indirection (Sections 2.1–2.2).

    A store owns the four relations, the direct and reverse predicate
    mappings, the dictionary, the statistics, and the bookkeeping the
    query translator needs: which predicates are multi-valued (need a
    DS/RS join) and which are involved in spills (veto star merging —
    Section 3.2.1). *)

type side = Direct | Reverse

type t

(** Create an empty store. The predicate mappings default to the 2-hash
    composition over the layout's widths. *)
val create :
  ?layout:Layout.t ->
  ?direct_map:Pred_map.t ->
  ?reverse_map:Pred_map.t ->
  ?dict:Rdf.Dictionary.t ->
  unit ->
  t

val database : t -> Relsql.Database.t
val dictionary : t -> Rdf.Dictionary.t
val stats : t -> Dataset_stats.t
val triples_loaded : t -> int

(** Insert one triple into both sides of the store; duplicates are
    ignored (RDF graphs are sets). *)
val insert : t -> Rdf.Triple.t -> unit

val load : t -> Rdf.Triple.t list -> unit

(** Delete one triple (no-op when absent). Spill rows and registry
    entries are left in place — they only make the translator more
    conservative. *)
val delete : t -> Rdf.Triple.t -> unit

(** Candidate columns the translator must probe for a predicate on a
    side (never empty). *)
val candidate_columns : t -> side -> pred_term:Rdf.Term.t -> int list

(** Has the predicate ever gone multi-valued on this side (so reads
    must join the secondary relation)? *)
val is_multivalued : t -> side -> pred_id:int -> bool

(** Is the predicate stored on any spill row (vetoes star merging)? *)
val is_spill_involved : t -> side -> pred_id:int -> bool

(** Pred/val pairs per row on a side. *)
val column_count : t -> side -> int

(** Section 2.3 reporting. *)
type side_report = {
  rows : int;
  spills : int;
  distinct_entities : int;
  null_fraction : float;
  storage_bytes : int;
}

val report : t -> side -> side_report
