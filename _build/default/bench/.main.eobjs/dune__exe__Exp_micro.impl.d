bench/exp_micro.ml: Harness List Printf Sparql Workloads
