(** Relation schemas: an ordered list of column names with O(1) position
    lookup. The engine is dynamically typed, so a schema carries no type
    information — columns acquire the type of the values stored in them,
    exactly as the DB2RDF layout requires (the same physical [val_i]
    column stores objects of many predicates). *)

type t

(** [make names] builds a schema; raises [Invalid_argument] on duplicate
    column names. *)
val make : string list -> t

val arity : t -> int
val columns : t -> string list

(** [column t i] is the name of the [i]-th column. *)
val column : t -> int -> string

(** [position t name] is the index of column [name], if present. *)
val position : t -> string -> int option

(** As {!position} but raises [Invalid_argument] when absent. *)
val position_exn : t -> string -> int

val mem : t -> string -> bool
val pp : Format.formatter -> t -> unit
