(** Physical planning: turns a {!Sql_ast.query} into an executable plan.

    This is the "35 years of relational optimization" stand-in: it picks
    access paths (hash-index lookup vs sequential scan), join strategies
    (index nested-loop when the inner side is an indexed base table,
    hash join on equality keys, nested loop otherwise), and pushes WHERE
    conjuncts to the earliest join input where they can be evaluated
    without changing LEFT OUTER JOIN semantics. The DB2RDF translator
    relies on this layer behaving like a production optimizer: a star
    query against DPH must become one index probe, not a scan. *)

open Sql_ast

type plan =
  | Scan of {
      table : string;
      alias : string;
      filter : expr option;
      cols : string list option;
          (** columns that survive into the output row ([None] = all);
              the filter still sees the full row — fused
              selection/projection *)
    }
  | Index_lookup of {
      table : string;
      alias : string;
      col : string;
      keys : Value.t list;
      filter : expr option;
      cols : string list option;
    }
  | Values_rows of { rows : expr list list; alias : string; cols : string list }
  | Subplan of { plan : plan; alias : string }
      (** Re-qualify a subquery's output columns under [alias]. *)
  | Inl_join of {
      outer : plan;
      table : string;
      alias : string;
      col : string;
      key : expr;  (** evaluated against each outer row *)
      kind : join_kind;
      residual : expr option;
      cols : string list option;
          (** inner-table columns kept in the output row ([None] = all);
              an inner-only residual still sees the full table row *)
    }
  | Hash_join of {
      left : plan;
      right : plan;
      left_keys : expr list;
      right_keys : expr list;
      kind : join_kind;
      residual : expr option;
    }
  | Nl_join of { left : plan; right : plan; kind : join_kind; cond : expr option }
  | Values_join of {
      outer : plan;
      rows : expr list list;
      alias : string;
      cols : string list;
    }
  | Wcoj of {
      atoms : Wcoj.atom list;  (** one per table alias, in FROM order *)
      var_order : int array;
          (** global intersection order over join-variable classes:
              most-constrained (most atoms) first, ties by class id —
              a pure function of the statement, so the same SQL always
              yields the same emission order *)
      n_vars : int;
      outputs : (string * string * int) list;
          (** (alias, column, variable) — every class member column, so
              any downstream qualified reference resolves; pruning
              narrows this list *)
      est_rows : int;  (** selector's output-cardinality estimate *)
    }
      (** Leapfrog multiway join: intersects all atoms sharing each
          join variable at once instead of chaining binary joins —
          worst-case-optimal on cyclic regions. *)
  | Extvp_scan of { input : plan; name : string }
      (** Marker around an access path that reads a semi-join reduction
          ({!Extvp}) instead of the base relation: execution is the
          wrapped plan's, but the substitution — and its est-vs-actual
          q-error — stays visible in EXPLAIN. *)
  | Filter of plan * expr
  | Project of {
      input : plan;
      items : (expr * string) list;
      distinct : bool;
      order_by : order_item list;
      limit : int option;
      offset : int option;
    }
  | Aggregate of {
      input : plan;
      keys : expr list;  (** GROUP BY expressions ([] = one global group) *)
      items : agg_item list;  (** output columns, in select order *)
      distinct : bool;
      order_by : order_item list;
      limit : int option;
      offset : int option;
    }
  | Union_plan of { all : bool; parts : plan list }
  | Empty_row  (** SELECT without FROM: one row, no columns *)

and agg_item =
  | Ai_plain of expr * string
      (** a grouped column (SQL requires it to appear in GROUP BY;
          evaluated on each group's first row) *)
  | Ai_agg of agg_fun * expr option * bool * string
      (** aggregate function, argument ([None] = star), DISTINCT flag,
          output name *)

(* ------------------------------------------------------------------ *)
(* Alias bookkeeping                                                   *)
(* ------------------------------------------------------------------ *)

let from_alias = function
  | From_table { alias; _ } -> alias
  | From_subquery { alias; _ } -> alias
  | From_values { alias; _ } -> alias

(** Aliases an expression depends on. Unqualified references depend on
    "anything", which we encode as [None] entries the caller treats
    conservatively. *)
let expr_aliases e =
  List.filter_map (fun (q, _) -> q) (expr_columns e)

let refers_only_to aliases e =
  let refs = expr_columns e in
  List.for_all
    (fun (q, _) ->
      match q with
      | Some a -> List.mem a aliases
      | None -> false (* conservative: keep unqualified refs at the top *))
    refs
  (* Expressions with no column references at all (constants) are fine. *)
  || refs = []

(* ------------------------------------------------------------------ *)
(* Access-path selection                                               *)
(* ------------------------------------------------------------------ *)

let table_index_cols db table_name =
  match Database.find db table_name with
  | None -> []
  | Some t ->
    List.map (fun pos -> Schema.column (Table.schema t) pos) (Table.indexed_columns t)

(** Recognize [alias.col = const] / [const = alias.col] / [alias.col IN
    (...)] conjuncts usable as index keys for [alias]. *)
let index_key_of_conjunct alias indexed = function
  | Binop (Eq, Col (Some a, c), Const v) when a = alias && List.mem c indexed ->
    Some (c, [ v ])
  | Binop (Eq, Const v, Col (Some a, c)) when a = alias && List.mem c indexed ->
    Some (c, [ v ])
  | In_list (Col (Some a, c), vs) when a = alias && List.mem c indexed ->
    Some (c, vs)
  | _ -> None

(** Recognize an equality conjunct joining [inner_alias.col] (indexed) to
    an expression over the outer aliases — the index nested-loop case. *)
let inl_key_of_conjunct ~outer_aliases ~inner_alias ~indexed = function
  | Binop (Eq, Col (Some a, c), rhs)
    when a = inner_alias && List.mem c indexed && refers_only_to outer_aliases rhs ->
    Some (c, rhs)
  | Binop (Eq, lhs, Col (Some a, c))
    when a = inner_alias && List.mem c indexed && refers_only_to outer_aliases lhs ->
    Some (c, lhs)
  | _ -> None

(** Recognize equality conjuncts usable as hash-join keys between the
    outer aliases and the new alias. *)
let hash_keys_of_conjunct ~outer_aliases ~inner_alias = function
  | Binop (Eq, lhs, rhs) ->
    let lhs_outer = refers_only_to outer_aliases lhs
    and rhs_outer = refers_only_to outer_aliases rhs
    and lhs_inner = refers_only_to [ inner_alias ] lhs && expr_aliases lhs <> []
    and rhs_inner = refers_only_to [ inner_alias ] rhs && expr_aliases rhs <> [] in
    if lhs_outer && rhs_inner then Some (lhs, rhs)
    else if rhs_outer && lhs_inner then Some (rhs, lhs)
    else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Cardinality estimation                                              *)
(* ------------------------------------------------------------------ *)

(** Crude output-cardinality estimate, used only to pick the smaller
    hash-join build side. Base-table counts are exact (the catalog is
    in memory); everything above applies textbook selectivity fudge
    factors. Being wrong only costs a larger build table, never a wrong
    answer. *)
let rec estimate db (plan : plan) : int =
  let table_rows name =
    match Database.find db name with
    | Some t -> Table.row_count t
    | None -> 1000
  in
  match plan with
  | Empty_row -> 1
  | Scan { table; filter; _ } ->
    let n = table_rows table in
    (match filter with Some _ -> max 1 (n / 3) | None -> n)
  | Index_lookup { table; keys; _ } ->
    let n = table_rows table in
    min n (List.length keys * max 1 (n / 20))
  | Values_rows { rows; _ } -> List.length rows
  | Subplan { plan; _ } -> estimate db plan
  | Inl_join { outer; _ } ->
    (* Index joins are typically key-to-few; assume ~1 match per row. *)
    estimate db outer
  | Hash_join { left; right; _ } | Nl_join { left; right; _ } ->
    max (estimate db left) (estimate db right)
  | Values_join { outer; rows; _ } ->
    estimate db outer * max 1 (List.length rows)
  | Wcoj { est_rows; _ } -> max 1 est_rows
  | Extvp_scan { input; _ } ->
    (* The reduction's own row count: this is the smaller cardinality
       that feeds the hash-join build-side swap and index-NL choice. *)
    estimate db input
  | Filter (p, _) -> max 1 (estimate db p / 3)
  | Project { input; limit; _ } ->
    let n = estimate db input in
    (match limit with Some l -> min n (max 0 l) | None -> n)
  | Aggregate { input; keys; limit; _ } ->
    let n = if keys = [] then 1 else max 1 (estimate db input / 4) in
    (match limit with Some l -> min n (max 0 l) | None -> n)
  | Union_plan { parts; _ } ->
    List.fold_left (fun a p -> a + estimate db p) 0 parts

(** Cost of a hash join that builds on [build] and probes with [probe],
    in abstract row-touch units. Building costs more per row than
    probing (a hash insert and posting append versus a lookup), which
    the weights reflect. The radix-partitioned parallel build divides
    the build by the worker count — but the morselized probe fans out
    over the very same pool, so the worker factor multiplies both terms
    equally and cancels out of any build-side comparison. That is
    deliberate: the cost must stay independent of the execution-time
    domain count, because the same plan is executed by the sequential,
    the morsel-parallel, and the partitioned-build paths, and the
    seq≡par bit-identity guarantee would be vacuous if they planned
    differently. *)
let hash_join_cost db ~build ~probe =
  (3 * estimate db build) + (2 * estimate db probe)

(** Build a hash join with the cheaper input as the build side. The
    executor always builds on [right] and probes [left], so for INNER
    joins the sides (and their key lists) are swapped when building on
    the left looks cheaper under {!hash_join_cost}. LEFT OUTER joins
    never swap: the null-padding side is fixed. Residuals and all
    downstream column references resolve by qualified name, so
    reordering the output layout is safe — and since the same plan is
    executed by both the sequential and parallel paths, their outputs
    stay identical. *)
let hash_join db ~left ~right ~left_keys ~right_keys ~kind ~residual =
  if
    kind = Inner
    && hash_join_cost db ~build:left ~probe:right
       < hash_join_cost db ~build:right ~probe:left
  then
    Hash_join
      { left = right; right = left; left_keys = right_keys;
        right_keys = left_keys; kind; residual }
  else Hash_join { left; right; left_keys; right_keys; kind; residual }

(* ------------------------------------------------------------------ *)
(* Worst-case-optimal join recognition                                 *)
(* ------------------------------------------------------------------ *)

(** Structural eligibility for the leapfrog operator: a flat select of
    three or more INNER-joined base tables whose every WHERE/ON conjunct
    is [col = const] or [col = col] and whose select items are plain
    qualified columns. Returns [Some build] when eligible; [build] then
    consults the installed selector against the planner's estimate of
    the binary alternative. Any unrecognized construct — LEFT joins,
    subqueries, materialized CTE references, expressions — falls back to
    the binary path by returning [None]. *)
let wcoj_of_select db (s : select) : (binary_est:int -> plan option) option =
  match Database.wcoj_selector db, s.from with
  | _, (None | Some (From_subquery _ | From_values _)) | None, _ -> None
  | Some _, _ when not (Database.wcoj db) -> None
  | Some selector, Some (From_table first) ->
    let joined =
      List.map
        (fun { kind; item; on } ->
          match kind, item with
          | Inner, From_table { table; alias } -> Some (alias, table, on)
          | _ -> None)
        s.joins
    in
    if List.exists (( = ) None) joined || List.length joined < 2 then None
    else begin
      let tables =
        (first.alias, first.table)
        :: List.map (fun j -> let a, t, _ = Option.get j in (a, t)) joined
      in
      let aliases = List.map fst tables in
      let schemas_ok =
        List.length (List.sort_uniq String.compare aliases)
        = List.length aliases
        && List.for_all
             (fun (_, tname) ->
               Database.mem db tname
               && not (Database.is_materialized db tname))
             tables
      in
      if not schemas_ok then None
      else begin
        let col_exists a c =
          match List.assoc_opt a tables with
          | None -> false
          | Some tname ->
            Schema.mem (Table.schema (Database.find_exn db tname)) c
        in
        let conjs =
          (match s.where with Some e -> conjuncts e | None -> [])
          @ List.concat_map
              (fun j ->
                match Option.get j with
                | _, _, Some e -> conjuncts e
                | _, _, None -> [])
              joined
        in
        let consts = ref [] (* (alias, col, value) *)
        and eqs = ref [] (* ((alias, col), (alias, col)) *) in
        let conjs_ok =
          List.for_all
            (function
              | Binop (Eq, Col (Some a, c), Const v)
              | Binop (Eq, Const v, Col (Some a, c))
                when col_exists a c ->
                consts := (a, c, v) :: !consts;
                true
              | Binop (Eq, Col (Some a, ca), Col (Some b, cb))
                when col_exists a ca && col_exists b cb ->
                eqs := ((a, ca), (b, cb)) :: !eqs;
                true
              | _ -> false)
            conjs
        in
        let proj_cols =
          List.map
            (fun it ->
              match it.expr with
              | Col (Some a, c) when col_exists a c -> Some (a, c)
              | _ -> None)
            s.items
        in
        if not (conjs_ok && List.for_all (( <> ) None) proj_cols) then None
        else begin
          (* Join-variable classes: union-find over (alias, col) pairs
             connected by equality conjuncts, seeded with every
             projected column so projection-only columns get singleton
             classes. Class ids are assigned by first appearance in
             (FROM order, schema-column order) — a deterministic
             canonical numbering. *)
          let pairs =
            List.concat_map (fun (x, y) -> [ x; y ]) !eqs
            @ List.map Option.get proj_cols
          in
          let alias_idx a =
            let rec go i = function
              | [] -> max_int
              | (a', _) :: tl -> if a' = a then i else go (i + 1) tl
            in
            go 0 tables
          in
          let col_idx a c =
            match List.assoc_opt a tables with
            | None -> max_int
            | Some tname ->
              (match Schema.position (Table.schema (Database.find_exn db tname)) c with
               | Some i -> i
               | None -> max_int)
          in
          let pairs =
            List.sort_uniq compare pairs
            |> List.sort (fun (a1, c1) (a2, c2) ->
                   compare
                     (alias_idx a1, col_idx a1 c1)
                     (alias_idx a2, col_idx a2 c2))
          in
          let n = List.length pairs in
          let arr = Array.of_list pairs in
          let index_of p =
            let rec go i = if arr.(i) = p then i else go (i + 1) in
            go 0
          in
          let parent = Array.init n (fun i -> i) in
          let rec root i =
            if parent.(i) = i then i
            else begin
              parent.(i) <- root parent.(i);
              parent.(i)
            end
          in
          let union a b =
            let ra = root a and rb = root b in
            (* Smaller index wins, keeping class roots canonical. *)
            if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
          in
          List.iter (fun (x, y) -> union (index_of x) (index_of y)) !eqs;
          (* Dense class ids in root order (= first-appearance order). *)
          let class_of = Array.make n (-1) in
          let n_vars = ref 0 in
          Array.iteri
            (fun i _ ->
              let r = root i in
              if class_of.(r) = -1 then begin
                class_of.(r) <- !n_vars;
                incr n_vars
              end;
              class_of.(i) <- class_of.(r))
            parent;
          let n_vars = !n_vars in
          let var_of p = class_of.(index_of p) in
          let atoms =
            List.map
              (fun (alias, table) ->
                let var_cols =
                  List.filter_map
                    (fun ((a, c) as p) ->
                      if a = alias then Some (c, Wcoj.W_var (var_of p))
                      else None)
                    pairs
                in
                let const_cols =
                  List.filter_map
                    (fun (a, c, v) ->
                      if a = alias then Some (c, Wcoj.W_const v) else None)
                    !consts
                in
                { Wcoj.w_table = table; w_alias = alias;
                  w_cols = const_cols @ var_cols })
              tables
          in
          (* Intersection order: most-constrained variable first (bound
             by the most atoms), ties by canonical class id. *)
          let participation = Array.make n_vars 0 in
          List.iter
            (fun a ->
              List.iter
                (fun v -> participation.(v) <- participation.(v) + 1)
                (Wcoj.atom_vars a))
            atoms;
          let var_order = Array.init n_vars (fun i -> i) in
          Array.sort
            (fun a b ->
              match compare participation.(b) participation.(a) with
              | 0 -> compare a b
              | c -> c)
            var_order;
          let outputs =
            List.map (fun ((a, c) as p) -> (a, c, var_of p)) pairs
          in
          Some
            (fun ~binary_est ->
              let d =
                selector { Wcoj.atoms; n_vars; binary_est }
              in
              if d.Wcoj.use_wcoj then
                Some
                  (Wcoj
                     { atoms; var_order; n_vars; outputs;
                       est_rows = d.Wcoj.est_rows })
              else None)
        end
      end
    end

let rec plan_query db (q : query) : plan =
  match q with
  | Select s -> plan_select db s
  | Union { all; parts } ->
    Union_plan { all; parts = List.map (plan_query db) parts }

and plan_base db (item : from_item) (conjs : expr list) : plan * expr list =
  (* Plan the first FROM item, consuming conjuncts pushed into it. *)
  match item with
  | From_table { table; alias } ->
    let indexed = table_index_cols db table in
    let key, rest =
      let rec pick acc = function
        | [] -> (None, List.rev acc)
        | c :: tl ->
          (match index_key_of_conjunct alias indexed c with
           | Some k -> (Some k, List.rev_append acc tl)
           | None -> pick (c :: acc) tl)
      in
      pick [] conjs
    in
    let local, rest =
      List.partition (refers_only_to [ alias ]) rest
    in
    let filter = conj_list local in
    let plan =
      match key with
      | Some (col, keys) ->
        Index_lookup { table; alias; col; keys; filter; cols = None }
      | None -> Scan { table; alias; filter; cols = None }
    in
    let plan =
      if Extvp.is_extvp_name table then Extvp_scan { input = plan; name = table }
      else plan
    in
    (plan, rest)
  | From_subquery { query; alias } ->
    let inner = plan_query db query in
    let plan = Subplan { plan = inner; alias } in
    let local, rest = List.partition (refers_only_to [ alias ]) conjs in
    let plan =
      match conj_list local with Some e -> Filter (plan, e) | None -> plan
    in
    (plan, rest)
  | From_values { rows; alias; cols } ->
    let plan = Values_rows { rows; alias; cols } in
    let local, rest = List.partition (refers_only_to [ alias ]) conjs in
    let plan =
      match conj_list local with Some e -> Filter (plan, e) | None -> plan
    in
    (plan, rest)

and plan_join db outer outer_aliases { kind; item; on } avail_conjs :
  plan * expr list =
  (* [avail_conjs] are WHERE conjuncts not yet applied; for INNER joins we
     may consume those that become evaluable here. LEFT joins only use
     their ON condition. *)
  let alias = from_alias item in
  let on_conjs = match on with Some e -> conjuncts e | None -> [] in
  let usable_where, deferred =
    match kind with
    | Inner ->
      List.partition (refers_only_to (alias :: outer_aliases)) avail_conjs
    | Left_outer -> ([], avail_conjs)
  in
  let conds = on_conjs @ usable_where in
  match item with
  | From_values { rows; alias; cols } ->
    let plan = Values_join { outer; rows; alias; cols } in
    let plan =
      match conj_list conds with Some e -> Filter (plan, e) | None -> plan
    in
    (plan, deferred)
  | From_table { table; alias } ->
    let indexed = table_index_cols db table in
    let inl, rest =
      let rec pick acc = function
        | [] -> (None, List.rev acc)
        | c :: tl ->
          (match inl_key_of_conjunct ~outer_aliases ~inner_alias:alias ~indexed c with
           | Some k -> (Some k, List.rev_append acc tl)
           | None -> pick (c :: acc) tl)
      in
      pick [] conds
    in
    (match inl with
     | Some (col, key) ->
       let join =
         Inl_join
           { outer; table; alias; col; key; kind;
             residual = conj_list rest; cols = None }
       in
       let join =
         if Extvp.is_extvp_name table then
           Extvp_scan { input = join; name = table }
         else join
       in
       (join, deferred)
     | None ->
       let is_key c =
         hash_keys_of_conjunct ~outer_aliases ~inner_alias:alias c <> None
       in
       let pairs =
         List.filter_map (hash_keys_of_conjunct ~outer_aliases ~inner_alias:alias) conds
       in
       if pairs <> [] then begin
         (* Non-key conjuncts local to the inner table are pushed below
            the hash build. This is safe for both join kinds: they only
            restrict which inner rows can match, and for LEFT joins these
            conjuncts came from the ON clause. *)
         let non_keys = List.filter (fun c -> not (is_key c)) conds in
         let local, residual =
           List.partition (refers_only_to [ alias ]) non_keys
         in
         let right, _ = plan_base db (From_table { table; alias }) local in
         ( hash_join db ~left:outer ~right
             ~left_keys:(List.map fst pairs)
             ~right_keys:(List.map snd pairs)
             ~kind ~residual:(conj_list residual),
           deferred )
       end
       else
         let right, _ = plan_base db (From_table { table; alias }) [] in
         (Nl_join { left = outer; right; kind; cond = conj_list conds }, deferred))
  | From_subquery { query; alias } ->
    let right = Subplan { plan = plan_query db query; alias } in
    let pairs =
      List.filter_map (hash_keys_of_conjunct ~outer_aliases ~inner_alias:alias) conds
    in
    if pairs <> [] then begin
      let residual =
        List.filter
          (fun c ->
            match hash_keys_of_conjunct ~outer_aliases ~inner_alias:alias c with
            | Some _ -> false
            | None -> true)
          conds
      in
      ( hash_join db ~left:outer ~right
          ~left_keys:(List.map fst pairs)
          ~right_keys:(List.map snd pairs)
          ~kind ~residual:(conj_list residual),
        deferred )
    end
    else (Nl_join { left = outer; right; kind; cond = conj_list conds }, deferred)

and plan_select db (s : select) : plan =
  let conjs = match s.where with Some e -> conjuncts e | None -> [] in
  let body, leftover =
    match s.from with
    | None -> (Empty_row, conjs)
    | Some first ->
      let binary () =
        let base, rest = plan_base db first conjs in
        let rec chain plan aliases rest = function
          | [] -> (plan, rest)
          | j :: tl ->
            let plan, rest = plan_join db plan aliases j rest in
            chain plan (from_alias j.item :: aliases) rest tl
        in
        chain base [ from_alias first ] rest s.joins
      in
      (match wcoj_of_select db s with
       | None -> binary ()
       | Some build ->
         (* Build the binary tree anyway: its estimate parameterizes the
            selector, and it is the plan when the selector declines. *)
         let bplan, brest = binary () in
         (match build ~binary_est:(estimate db bplan) with
          | Some wplan -> (wplan, []) (* recognition consumed every conjunct *)
          | None -> (bplan, brest)))
  in
  let body =
    match conj_list leftover with Some e -> Filter (body, e) | None -> body
  in
  let item_name i { expr; alias } =
    match alias, expr with
    | Some a, _ -> a
    | None, Col (_, n) -> n
    | None, _ -> Printf.sprintf "c%d" i
  in
  let is_aggregate =
    s.group_by <> []
    || List.exists (fun { expr; _ } -> match expr with Agg _ -> true | _ -> false)
         s.items
  in
  if is_aggregate then begin
    let items =
      List.mapi
        (fun i it ->
          match it.expr with
          | Agg (fn, arg, distinct) -> Ai_agg (fn, arg, distinct, item_name i it)
          | e -> Ai_plain (e, item_name i it))
        s.items
    in
    Aggregate
      { input = body; keys = s.group_by; items; distinct = s.distinct;
        order_by = s.order_by; limit = s.limit; offset = s.offset }
  end
  else
    Project
      { input = body;
        items = List.mapi (fun i it -> (it.expr, item_name i it)) s.items;
        distinct = s.distinct; order_by = s.order_by; limit = s.limit;
        offset = s.offset }

(* ------------------------------------------------------------------ *)
(* Column pruning                                                      *)
(* ------------------------------------------------------------------ *)

(* Which qualified columns the consumers of a node's output read. Any
   unqualified reference collapses to [All]: it could resolve to any
   alias, so nothing below may be pruned. *)
type needed = All | Only of (string * string) list

let needed_union a b =
  match a, b with
  | All, _ | _, All -> All
  | Only x, Only y -> Only (List.rev_append x y)

let needed_of_exprs es =
  let cols = List.concat_map expr_columns es in
  if List.exists (fun (q, _) -> q = None) cols then All
  else Only (List.map (fun (q, n) -> (Option.get q, n)) cols)

let opt_to_list = function None -> [] | Some e -> [ e ]

(* Columns of [alias] the consumers read, in a stable order — [None]
   when everything must be kept. *)
let cols_for alias = function
  | All -> None
  | Only refs ->
    Some
      (List.sort_uniq compare
         (List.filter_map (fun (a, n) -> if a = alias then Some n else None) refs))

(** Push column requirements down the plan, narrowing table-access and
    index-join nodes to the columns their consumers actually read.
    Intermediate star-join rows shrink from full triple rows to single
    object columns, which is most of the executor's allocation. *)
let rec prune (needed : needed) plan =
  match plan with
  | Empty_row | Values_rows _ -> plan
  | Scan { table; alias; filter; _ } ->
    (* The filter runs against the full row before projection. *)
    Scan { table; alias; filter; cols = cols_for alias needed }
  | Index_lookup { table; alias; col; keys; filter; _ } ->
    Index_lookup { table; alias; col; keys; filter; cols = cols_for alias needed }
  | Subplan { plan; alias } -> Subplan { plan = prune All plan; alias }
  | Inl_join { outer; table; alias; col; key; kind; residual; _ } ->
    (* An inner-only residual is evaluated on the raw table row, so its
       references need not survive; a cross residual is evaluated on the
       combined output row, so they must. *)
    let cross =
      match residual with
      | Some e when not (refers_only_to [ alias ] e) -> [ e ]
      | _ -> []
    in
    let cols = cols_for alias (needed_union needed (needed_of_exprs cross)) in
    let outer_needed =
      needed_union needed (needed_of_exprs (key :: opt_to_list residual))
    in
    Inl_join
      { outer = prune outer_needed outer; table; alias; col; key; kind;
        residual; cols }
  | Hash_join { left; right; left_keys; right_keys; kind; residual } ->
    let n =
      needed_union needed
        (needed_of_exprs (left_keys @ right_keys @ opt_to_list residual))
    in
    Hash_join
      { left = prune n left; right = prune n right; left_keys; right_keys;
        kind; residual }
  | Nl_join { left; right; kind; cond } ->
    let n = needed_union needed (needed_of_exprs (opt_to_list cond)) in
    Nl_join { left = prune n left; right = prune n right; kind; cond }
  | Values_join { outer; rows; alias; cols } ->
    let n = needed_union needed (needed_of_exprs (List.concat rows)) in
    Values_join { outer = prune n outer; rows; alias; cols }
  | Wcoj ({ outputs; _ } as w) ->
    (* Output columns are copies of the variable bindings; dropping
       unread class members never loses a constraint (the classes and
       atoms are untouched). *)
    (match needed with
     | All -> plan
     | Only refs ->
       let keep =
         List.filter
           (fun (a, c, _) -> List.exists (fun (a', c') -> a' = a && c' = c) refs)
           outputs
       in
       Wcoj { w with outputs = keep })
  | Extvp_scan { input; name } -> Extvp_scan { input = prune needed input; name }
  | Filter (p, e) -> Filter (prune (needed_union needed (needed_of_exprs [ e ])) p, e)
  | Project { input; items; distinct; order_by; limit; offset } ->
    (* A projection re-creates every output column, so requirements from
       above reset; sort keys may resolve against the input. *)
    let n =
      needed_of_exprs
        (List.map fst items @ List.map (fun o -> o.sort_expr) order_by)
    in
    Project { input = prune n input; items; distinct; order_by; limit; offset }
  | Aggregate { input; keys; items; distinct; order_by; limit; offset } ->
    (* Aggregate sort keys resolve against the aggregated output, not
       the input, so they impose nothing on the input. An arg-less
       DISTINCT aggregate (COUNT DISTINCT over whole rows) reads every
       input column, so pruning must keep them all. *)
    let whole_row_distinct =
      List.exists
        (function Ai_agg (_, None, true, _) -> true | _ -> false)
        items
    in
    let n =
      if whole_row_distinct then All
      else
        needed_of_exprs
          (keys
           @ List.concat_map
               (function
                 | Ai_plain (e, _) -> [ e ]
                 | Ai_agg (_, arg, _, _) -> opt_to_list arg)
               items)
    in
    Aggregate { input = prune n input; keys; items; distinct; order_by; limit; offset }
  | Union_plan { all; parts } ->
    Union_plan { all; parts = List.map (prune All) parts }

let plan_query db q = prune All (plan_query db q)
let plan_select db s = prune All (plan_select db s)

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)
(* ------------------------------------------------------------------ *)

(** One-line operator description (no children) — shared by the plan
    printer and the {!Opstats} labels of EXPLAIN ANALYZE. *)
let node_label plan =
  let opt_expr = function
    | Some e -> " [" ^ Sql_pp.expr_to_string e ^ "]"
    | None -> ""
  in
  let kind_name = function Inner -> "inner" | Left_outer -> "left" in
  match plan with
  | Empty_row -> "EmptyRow"
  | Scan { table; alias; filter; _ } ->
    Printf.sprintf "SeqScan %s AS %s%s" table alias (opt_expr filter)
  | Index_lookup { table; alias; col; keys; filter; _ } ->
    Printf.sprintf "IndexLookup %s AS %s on %s (%d keys)%s" table alias col
      (List.length keys) (opt_expr filter)
  | Values_rows { alias; rows; _ } ->
    Printf.sprintf "Values %s (%d rows)" alias (List.length rows)
  | Subplan { alias; _ } -> Printf.sprintf "Subquery AS %s" alias
  | Inl_join { table; alias; col; key; kind; residual; _ } ->
    Printf.sprintf "IndexNLJoin(%s) %s AS %s on %s = %s%s" (kind_name kind)
      table alias col (Sql_pp.expr_to_string key) (opt_expr residual)
  | Hash_join { left_keys; kind; residual; _ } ->
    Printf.sprintf "HashJoin(%s) on %s%s" (kind_name kind)
      (String.concat "," (List.map Sql_pp.expr_to_string left_keys))
      (opt_expr residual)
  | Nl_join { kind; cond; _ } ->
    Printf.sprintf "NLJoin(%s)%s" (kind_name kind) (opt_expr cond)
  | Values_join { rows; alias; _ } ->
    Printf.sprintf "LateralValues %s (%d rows)" alias (List.length rows)
  | Wcoj { atoms; n_vars; est_rows; _ } ->
    Printf.sprintf "LeapfrogJoin [%d atoms, %d vars] on %s (est %d)"
      (List.length atoms) n_vars
      (String.concat ","
         (List.map (fun a -> a.Wcoj.w_table ^ " AS " ^ a.Wcoj.w_alias) atoms))
      est_rows
  | Extvp_scan { name; _ } -> Printf.sprintf "ExtvpScan %s" name
  | Filter (_, e) -> Printf.sprintf "Filter%s" (opt_expr (Some e))
  | Project { items; distinct; _ } ->
    Printf.sprintf "Project%s (%s)"
      (if distinct then " DISTINCT" else "")
      (String.concat ", " (List.map snd items))
  | Aggregate { keys; items; _ } ->
    Printf.sprintf "Aggregate [%d keys] (%s)" (List.length keys)
      (String.concat ", "
         (List.map
            (function Ai_plain (_, n) -> n | Ai_agg (_, _, _, n) -> n)
            items))
  | Union_plan { all; _ } -> if all then "UnionAll" else "Union"

(** Immediate inputs of a plan node, in plan order. *)
let children = function
  | Empty_row | Scan _ | Index_lookup _ | Values_rows _ | Wcoj _ -> []
  | Subplan { plan; _ } -> [ plan ]
  | Extvp_scan { input; _ } -> [ input ]
  | Inl_join { outer; _ } -> [ outer ]
  | Hash_join { left; right; _ } -> [ left; right ]
  | Nl_join { left; right; _ } -> [ left; right ]
  | Values_join { outer; _ } -> [ outer ]
  | Filter (p, _) -> [ p ]
  | Project { input; _ } -> [ input ]
  | Aggregate { input; _ } -> [ input ]
  | Union_plan { parts; _ } -> parts

let rec pp_plan ?(indent = 0) buf plan =
  Buffer.add_string buf (String.make indent ' ');
  Buffer.add_string buf (node_label plan);
  Buffer.add_char buf '\n';
  List.iter (pp_plan ~indent:(indent + 2) buf) (children plan)

let plan_to_string plan =
  let buf = Buffer.create 256 in
  pp_plan buf plan;
  Buffer.contents buf
