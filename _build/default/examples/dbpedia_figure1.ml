(** The paper's running example, end to end: the Figure 1(a) DBpedia
    sample, the DB2RDF relations it shreds into (Figure 1(b-e)), and the
    Figure 6 query with its generated SQL (the Figure 13 analogue).

    Run with: [dune exec examples/dbpedia_figure1.exe] *)

let fig1_triples =
  let t s p o = Rdf.Triple.spo s p o in
  let i = Rdf.Term.iri and l = Rdf.Term.lit in
  [ t "CharlesFlint" "born" (l "1850"); t "CharlesFlint" "died" (l "1934");
    t "CharlesFlint" "founder" (i "IBM"); t "LarryPage" "born" (l "1973");
    t "LarryPage" "founder" (i "Google"); t "LarryPage" "board" (i "Google");
    t "LarryPage" "home" (l "Palo Alto"); t "Android" "developer" (i "Google");
    t "Android" "version" (l "4.1"); t "Android" "kernel" (i "Linux");
    t "Android" "preceded" (l "4.0"); t "Android" "graphics" (i "OpenGL");
    t "Google" "industry" (l "Software"); t "Google" "industry" (l "Internet");
    t "Google" "employees" (l "54,604"); t "Google" "HQ" (l "Mountain View");
    t "IBM" "industry" (l "Software"); t "IBM" "industry" (l "Hardware");
    t "IBM" "industry" (l "Services"); t "IBM" "employees" (l "433,362");
    t "IBM" "HQ" (l "Armonk") ]

(* The Figure 6 query: founders or board members of software companies,
   the products those companies develop, employee counts... the paper
   uses `revenue`, which the sample data does not populate — we query
   `employees` so the mandatory group matches. *)
let fig6_query =
  {|SELECT ?x ?y ?z ?n ?m WHERE {
      ?x <home> "Palo Alto" .
      { ?x <founder> ?y } UNION { ?x <board> ?y }
      { ?y <industry> "Software" .
        ?z <developer> ?y .
        ?y <employees> ?n }
      OPTIONAL { ?y <HQ> ?m }
    }|}

let print_relation db dict name =
  Printf.printf "\n-- %s --\n" name;
  let table = Relsql.Database.find_exn db name in
  let schema = Relsql.Table.schema table in
  let cols = Relsql.Schema.columns schema in
  print_endline (String.concat " | " cols);
  Relsql.Table.iter
    (fun _ row ->
      let cells =
        List.mapi
          (fun i col ->
            match row.(i) with
            | Relsql.Value.Int id when col <> "spill" ->
              Rdf.Term.to_string (Rdf.Dictionary.term_of dict id)
            | v -> Relsql.Value.to_string v)
          cols
      in
      print_endline (String.concat " | " cells))
    table

let () =
  (* Color the predicates of the sample (Figure 4: 13 predicates need
     only a handful of columns) and load. *)
  let engine, dcol, _ =
    Db2rdf.Engine.create_colored
      ~layout:(Db2rdf.Layout.make ~dph_cols:5 ~rph_cols:5)
      fig1_triples
  in
  Printf.printf
    "Figure 4 coloring: %d predicates -> %d DPH columns (coverage %.0f%%)\n"
    dcol.Db2rdf.Coloring.total_predicates dcol.Db2rdf.Coloring.colors_used
    (100.0 *. Db2rdf.Coloring.coverage dcol);

  (* Figure 1(b-e): the four relations. *)
  let loader = Db2rdf.Engine.loader engine in
  let db = Db2rdf.Loader.database loader in
  let dict = Db2rdf.Loader.dictionary loader in
  List.iter (print_relation db dict) [ "DPH"; "DS"; "RPH"; "RS" ];

  (* Figure 6 + Figure 13: query, plan and SQL. *)
  let q = Sparql.Parser.parse fig6_query in
  print_endline "\n== Figure 6 query -> Figure 13 SQL ==";
  print_endline (Db2rdf.Engine.explain engine q);
  print_endline "== results ==";
  let r = Db2rdf.Engine.query engine q in
  Printf.printf "%s\n" (String.concat "\t" r.Sparql.Ref_eval.vars);
  List.iter
    (fun row ->
      print_endline
        (String.concat "\t"
           (List.map
              (function Some t -> Rdf.Term.to_string t | None -> "-")
              row)))
    r.Sparql.Ref_eval.rows
