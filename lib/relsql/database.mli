(** A database is a named catalog of {!Table.t}. The executor
    materializes common table expressions into an overlay database so
    that CTE names resolve like ordinary tables without polluting the
    base catalog. *)

type t

(** Parallelism adopted by databases at creation — the process-wide
    default behind the CLI's [--domains] flag, so every store backend
    (each creating its own catalog) picks it up without per-store
    plumbing. 1 = sequential execution. *)
val default_parallelism : int ref

(** Radix partition count for parallel hash-join builds adopted by
    databases at creation (the CLI's [--join-partitions] flag);
    0 = auto (sized from the domain count at execution time). *)
val default_join_partitions : int ref

(** When set (the CLI's [--compress] flag), store backends freeze their
    tables into bit-packed columnar form after bulk load. Purely
    physical — results are identical either way. *)
val default_compress : bool ref

(** When set (the CLI's [--wcoj] flag), databases adopt WCOJ planning
    at creation: eligible flat multiway joins may run as a leapfrog
    (worst-case-optimal) join instead of a binary join tree. Purely a
    plan-shape knob — results are identical. *)
val default_wcoj : bool ref

val create : string -> t

(** [overlay db] is a scratch database whose lookups fall back to [db].
    Tables created in the overlay shadow same-named tables beneath. *)
val overlay : t -> t

(** Create and register an empty table; raises [Invalid_argument] on a
    duplicate name in this scope. *)
val create_table : t -> string -> Schema.t -> Table.t

(** Register an already-built table (e.g. a materialized CTE),
    replacing any same-named table in this scope. *)
val add_table : t -> Table.t -> unit

(** Set how many domains statements against this database may use
    (clamped to at least 1). Overlays inherit their parent's setting at
    creation. *)
val set_parallelism : t -> int -> unit

val parallelism : t -> int

(** Set the radix partition count for parallel hash-join builds
    (rounded up to a power of two by the executor; clamped to at
    least 0). 0 = auto. Overlays inherit their parent's setting at
    creation. *)
val set_join_partitions : t -> int -> unit

val join_partitions : t -> int

(** Enable or disable WCOJ planning for statements against this
    database. Overlays inherit the setting at creation. *)
val set_wcoj : t -> bool -> unit

val wcoj : t -> bool

(** Install (or clear) the statistics-informed chooser between binary
    join trees and the leapfrog operator (see {!Wcoj.selector}). The
    planner only considers WCOJ when both {!wcoj} is set and a selector
    is installed. Overlays inherit the selector at creation. *)
val set_wcoj_selector : t -> Wcoj.selector option -> unit

val wcoj_selector : t -> Wcoj.selector option

(** The shared scan-result cache (see {!Scan_cache}); overlays alias
    their parent's. *)
val scan_cache : t -> Scan_cache.t

(** Install (or clear) the semi-join-reduction registry
    (see {!Extvp}). Reduction tables resolve through {!find} lazily but
    never enter the catalog — {!data_version}, {!table_names} and
    {!freeze_all} do not see them. Overlays alias their parent's
    registry at creation. *)
val set_extvp : t -> Extvp.t option -> unit

val extvp : t -> Extvp.t option

val find : t -> string -> Table.t option
val find_exn : t -> string -> Table.t
val mem : t -> string -> bool

(** Whether [name] resolves to a table registered in an overlay scope —
    a materialized CTE whose rows live in the executor's batch stash
    rather than the table store. *)
val is_materialized : t -> string -> bool
val drop_table : t -> string -> unit
val table_names : t -> string list

(** Freeze every table in this scope (not overlay parents) into
    compressed columnar form ({!Table.freeze}) — the bulk-load epilogue
    of [--compress] runs. Later writes land in each table's boxed delta
    side; {!merge_all} (or the per-table threshold policy) folds them
    back in. *)
val freeze_all : t -> unit

(** Fold every frozen table's delta back into its packed main
    ({!Table.merge}); returns the number of tables that actually
    merged. The eager compaction behind [rdfstore merge]. *)
val merge_all : t -> int

(** Per-table {!Table.compression_report}s for this scope, sorted by
    table name. *)
val compression_reports : t -> Table.compression_report list

(** [snapshot db] is an immutable copy-on-write view of [db]'s root
    catalog: every table is captured via {!Table.snapshot}, so a reader
    can keep executing against the snapshot while a writer commits to
    [db] — later writes land in the live tables' private delta sides
    and never disturb the view. The snapshot has its own scan cache (cache
    entries are keyed per table version, i.e. per-snapshot-valid), no
    reduction registry, and no WCOJ selector (a closure over the
    owner's live statistics). *)
val snapshot : t -> t

(** A stamp over the catalog's data, folded from every table's name and
    {!Table.version}: changes whenever any table's data changes or a
    table is created/dropped. One shared invalidation signal for the
    engine's statement cache and the scan cache. *)
val data_version : t -> int

(** Companion stamp over physical encodings, folded from every table's
    {!Table.enc_epoch}: changes on freeze/thaw while {!data_version}
    stays put. The reduction registry stamps on both. *)
val enc_version : t -> int

(** Third stamp, folded from every table's {!Table.delta_epoch}:
    changes on delta-side writes of frozen tables and on merges,
    without charging the write a re-encode. Scan, statement and
    reduction caches stamp on the [(data, enc, delta)] triple. *)
val delta_version : t -> int
