(** Structural tests for the generated SQL (Figures 12/13): CTE counts,
    star templates, the disjunctive flip, secondary-table joins, filter
    CTE placement, and the DICT decode in filters. *)

open Db2rdf
module Sql = Relsql.Sql_ast

let engine () =
  let e = Engine.create ~layout:(Layout.make ~dph_cols:6 ~rph_cols:6) () in
  Engine.load e (Helpers.fig1_triples ());
  e

let translate e src = Engine.translate e (Sparql.Parser.parse src)

let sql_text stmt = Relsql.Sql_pp.to_string stmt

let count_substring s sub =
  let n = ref 0 in
  let ls = String.length sub in
  for i = 0 to String.length s - ls do
    if String.sub s i ls = sub then incr n
  done;
  !n

let test_star_single_cte () =
  let e = engine () in
  (* A 3-triple subject star merges into ONE CTE (plus the final
     SELECT): the entity-oriented layout's signature shape. *)
  let stmt =
    translate e
      "SELECT ?s WHERE { ?s <industry> ?a . ?s <employees> ?b . ?s <HQ> ?c }"
  in
  Alcotest.(check int) "one CTE for the whole star" 1 (List.length stmt.Sql.ctes);
  (* The multi-valued industry predicate pulls in a DS join. *)
  Alcotest.(check bool) "joins DS for industry" true
    (Helpers.contains (sql_text stmt) "DS")

let test_unmerged_needs_more_ctes () =
  let e = engine () in
  let options = { Engine.default_options with merge = false } in
  let stmt =
    Engine.translate ~options e
      (Sparql.Parser.parse
         "SELECT ?s WHERE { ?s <industry> ?a . ?s <employees> ?b . ?s <HQ> ?c }")
  in
  Alcotest.(check int) "one CTE per triple without merging" 3
    (List.length stmt.Sql.ctes)

let test_or_star_flip () =
  let e = engine () in
  let stmt =
    translate e
      "SELECT ?x ?y WHERE { { ?x <founder> ?y } UNION { ?x <board> ?y } }"
  in
  let text = sql_text stmt in
  (* The disjunctive star uses the lateral VALUES flip, not UNION ALL. *)
  Alcotest.(check bool) "flip present" true (Helpers.contains text "LATERAL");
  Alcotest.(check bool) "no union" false (Helpers.contains text "UNION")

let test_unmergeable_union_falls_back () =
  let e = engine () in
  (* Different entity variables: no OR merge; branches become UNION ALL. *)
  let stmt =
    translate e "SELECT ?x WHERE { { ?x <founder> ?y } UNION { ?z <board> ?x } }"
  in
  Alcotest.(check bool) "union fallback" true
    (Helpers.contains (sql_text stmt) "UNION ALL")

let test_opt_merge_case_projection () =
  let e = engine () in
  let stmt =
    translate e
      "SELECT ?s ?e WHERE { ?s <industry> ?i OPTIONAL { ?s <employees> ?e } }"
  in
  let text = sql_text stmt in
  (* OPT-merged: no LEFT OUTER JOIN between pipelines; the optional
     predicate appears only inside a CASE projection. (The DS join for
     the multi-valued industry predicate is also a left join, so count:
     exactly one LEFT OUTER JOIN, the DS one.) *)
  Alcotest.(check int) "only the DS left join" 1
    (count_substring text "LEFT OUTER JOIN");
  Alcotest.(check bool) "CASE projection for optional" true
    (Helpers.contains text "CASE WHEN")

let test_filter_becomes_cte_with_dict () =
  let e = engine () in
  let stmt = translate e "SELECT ?s WHERE { ?s <born> ?b FILTER (?b > 1900) }" in
  let text = sql_text stmt in
  Alcotest.(check bool) "DICT join for value comparison" true
    (Helpers.contains text "DICT");
  Alcotest.(check bool) "numeric branch" true (Helpers.contains text "num")

let test_entry_join_between_ctes () =
  let e = engine () in
  let stmt =
    translate e "SELECT ?x ?i WHERE { ?x <founder> ?y . ?y <industry> ?i }"
  in
  let text = sql_text stmt in
  (* The second access joins the previous CTE through the entry column. *)
  Alcotest.(check bool) "entry join" true
    (Helpers.contains text "T.entry = P.");
  (* And the physical plan uses an index probe, not a scan, for it. *)
  let plan =
    Relsql.Executor.explain (Loader.database (Engine.loader e)) stmt
  in
  Alcotest.(check bool) "index nested loop on the primary" true
    (Helpers.contains plan "IndexNLJoin")

let test_spilled_predicates_cascade () =
  (* 1-column layout: the star must cascade into one CTE per triple
     (the paper's multi-statement evaluation for spills). *)
  let e =
    Engine.create
      ~layout:(Layout.make ~dph_cols:1 ~rph_cols:1)
      ~direct_map:(Pred_map.hashed ~m:1 ~seed:1)
      ~reverse_map:(Pred_map.hashed ~m:1 ~seed:2) ()
  in
  Engine.load e (Helpers.fig1_triples ());
  let stmt =
    translate e "SELECT ?s WHERE { ?s <employees> ?a . ?s <HQ> ?b }"
  in
  Alcotest.(check int) "cascaded star" 2 (List.length stmt.Sql.ctes)

let test_generated_sql_reparses () =
  let e = engine () in
  List.iter
    (fun src ->
      let stmt = translate e src in
      let text = Relsql.Sql_pp.to_string stmt in
      let reparsed = Relsql.Sql_parser.parse text in
      Alcotest.(check string) "generated SQL round-trips through the parser"
        text
        (Relsql.Sql_pp.to_string reparsed))
    [ Helpers.fig6_query_src;
      "SELECT ?s WHERE { ?s <industry> ?a . ?s <employees> ?b }";
      "SELECT ?p ?o WHERE { <Android> ?p ?o }";
      "SELECT ?s WHERE { ?s <born> ?b FILTER (?b > 1900 && ?b < 2000) }";
      "SELECT DISTINCT ?i WHERE { ?c <industry> ?i } ORDER BY ?i LIMIT 2" ]

let suite =
  [ Alcotest.test_case "star = one CTE" `Quick test_star_single_cte;
    Alcotest.test_case "no merge = CTE per triple" `Quick test_unmerged_needs_more_ctes;
    Alcotest.test_case "OR star uses the flip" `Quick test_or_star_flip;
    Alcotest.test_case "unmergeable union falls back" `Quick test_unmergeable_union_falls_back;
    Alcotest.test_case "OPT merge = CASE projection" `Quick test_opt_merge_case_projection;
    Alcotest.test_case "filter CTE decodes via DICT" `Quick test_filter_becomes_cte_with_dict;
    Alcotest.test_case "pipeline joins on entry" `Quick test_entry_join_between_ctes;
    Alcotest.test_case "spill cascade" `Quick test_spilled_predicates_cascade;
    Alcotest.test_case "generated SQL reparses" `Quick test_generated_sql_reparses ]
