(** The Data Flow Builder (Section 3.1.1): produced/required variables
    (Definitions 3.2/3.3), the data flow graph (Definition 3.8) and the
    greedy optimal flow tree (Figure 9). *)

type node = { triple : int; meth : Cost.access }

type edge = {
  src : node option;  (** [None] is the root *)
  dst : node;
  weight : float;
}

type graph = {
  nodes : node list;
  edges : edge list;  (** sorted by ascending weight *)
}

(** Variables required to be bound before a (triple, method) access
    (Definition 3.3). *)
val required : Sparql.Ast.triple_pat -> Cost.access -> Sparql.Ast.VarSet.t

(** Variables bound after the access (Definition 3.2). *)
val produced : Sparql.Ast.triple_pat -> Cost.access -> Sparql.Ast.VarSet.t

(** Build the weighted data flow graph; edge weight is the target
    node's TMC. Edges are suppressed between OR-connected triples and
    out of OPTIONAL scopes (Definition 3.8). *)
val build : Sparql.Pattern_tree.t -> Dataset_stats.t -> Rdf.Dictionary.t -> graph

type flow = {
  order : node list;  (** one chosen node per triple, insertion order *)
  method_of : Cost.access array;  (** triple -> chosen method *)
  pos_of : int array;  (** triple -> insertion position *)
  parent_of : node option array;  (** triple -> flow parent node *)
}

(** [Best] is the paper's greedy (Figure 9); [Worst] prefers the most
    expensive indexed access — the deliberately sub-optimal flow used by
    the naive-translation baseline and the Figure 14 experiment. *)
type objective = Best | Worst

val optimal_flow : ?objective:objective -> Sparql.Pattern_tree.t -> graph -> flow

(** Graph + flow in one step. *)
val compute :
  ?objective:objective ->
  Sparql.Pattern_tree.t ->
  Dataset_stats.t ->
  Rdf.Dictionary.t ->
  graph * flow

val node_to_string : Sparql.Pattern_tree.t -> node -> string
val flow_to_string : Sparql.Pattern_tree.t -> flow -> string
