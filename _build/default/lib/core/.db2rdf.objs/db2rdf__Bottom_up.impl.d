lib/core/bottom_up.ml: Array Cost Dataset_stats Exec_tree List Merge Option Rdf Sparql
