(** Reference SPARQL evaluator over {!Rdf.Graph}.

    Implements the W3C bottom-up algebra for the supported subset: BGP
    join, group join, UNION as multiset union, OPTIONAL as LeftJoin by
    solution compatibility, FILTER with error-as-false effective boolean
    values, and the aggregate subset. It doubles as (a) the correctness
    oracle every relational store is property-tested against, and (b)
    the "native store" system in the cross-system benchmarks. *)

module VarMap : Map.S with type key = string

(** A solution mapping: variable -> dictionary id. *)
type binding = int VarMap.t

type results = {
  vars : string list;  (** projected variables, in projection order *)
  rows : Rdf.Term.t option list list;
      (** one row per solution; [None] = unbound (OPTIONAL) *)
}

exception Timeout

(** Evaluate a pattern, extending each incoming solution (exposed for
    algebra-level testing). *)
val eval_pattern : Rdf.Graph.t -> binding list -> Ast.pattern -> binding list

(** Evaluate a query; [timeout] is wall-clock seconds (raises
    {!Timeout}). *)
val eval : ?timeout:float -> Rdf.Graph.t -> Ast.query -> results

(** Apply a SPARQL UPDATE to the graph in place — the reference
    semantics the relational stores are diffed against. [DELETE WHERE]
    matches against the pre-update state and removes the instantiated
    template triples. *)
val apply_update : Rdf.Graph.t -> Ast.update -> unit

(** Canonical form for comparing result multisets across stores: rows
    rendered as strings and sorted. *)
val canonical : results -> string list

(** Order-insensitive multiset equality of results. *)
val equal_results : results -> results -> bool
