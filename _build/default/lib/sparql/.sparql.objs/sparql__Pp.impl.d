lib/sparql/pp.ml: Ast Buffer List Printf Rdf String
