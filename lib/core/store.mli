(** The store interface every system in the benchmark implements:
    DB2RDF, the triple-store and predicate-oriented baselines, and the
    native reference engine. Query answers use the reference evaluator's
    result type so cross-store comparison is direct. *)

type t = {
  name : string;
  load : Rdf.Triple.t list -> unit;
  delete : Rdf.Triple.t list -> unit;
  query : ?timeout:float -> Sparql.Ast.query -> Sparql.Ref_eval.results;
      (** May raise {!Relsql.Executor.Timeout} or
          {!Filter_sql.Unsupported}. *)
  analyze :
    ?timeout:float ->
    Sparql.Ast.query ->
    Sparql.Ref_eval.results * Relsql.Opstats.t option;
      (** Like [query], but also returns the per-operator execution
          metrics tree ([None] for stores that do not execute through
          the relational engine). *)
  explain : Sparql.Ast.query -> string;
  update : Sparql.Ast.update -> unit;
      (** Apply a SPARQL UPDATE. [DELETE WHERE] matches against the
          pre-update state. *)
}

(** Build a store's [update] from its own query/insert/delete
    primitives: the DATA forms go straight through, while
    [DELETE WHERE] evaluates a SELECT over the template's variables
    through the store's own query path, instantiates the template under
    every solution, and deletes the resulting ground triples (a ground
    template becomes a count-star existence probe). *)
val update_via :
  query:(?timeout:float -> Sparql.Ast.query -> Sparql.Ref_eval.results) ->
  insert:(Rdf.Triple.t list -> unit) ->
  delete:(Rdf.Triple.t list -> unit) ->
  Sparql.Ast.update ->
  unit

(** Outcome classification, mirroring Figure 15's categories. *)
type outcome =
  | Complete of Sparql.Ref_eval.results
  | Timed_out
  | Unsupported of string
  | Failed of string

(** Run a query, classifying the outcome and measuring wall-clock
    seconds. *)
val run : ?timeout:float -> t -> Sparql.Ast.query -> outcome * float

val outcome_to_string : outcome -> string
