lib/relsql/database.mli: Schema Table
